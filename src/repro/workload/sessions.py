"""Session-churn soak: millions of lifecycles, bounded footprint.

A million-user deployment does not hold a million live sessions — it
holds a bounded working set that churns as users connect, act, idle
out, and occasionally come back.  This harness drives the real
:class:`~repro.core.session.SessionManager` through that lifecycle on
the virtual clock and measures the *structural* per-session state
footprint (:meth:`~repro.core.session.Session.footprint`: token
bucket, async op ids, transaction handles, fingerprint) rather than
``sys.getsizeof``, so the number is deterministic across interpreter
versions and the soak can assert a hard bytes-per-live-session bound.

Everything is seeded; two same-seed soaks produce identical reports,
including the sampled footprint series.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.admission import TokenBucket
from repro.core.session import SessionManager


@dataclass
class ChurnConfig:
    """One soak run."""

    lifecycles: int = 1_000_000
    #: SessionManager cap (the paper's ~10K concurrent clients).
    max_sessions: int = 10_000
    #: Idle expiry; together with the mean inter-arrival gap this sets
    #: the steady-state live-session count (~expiry / gap).
    expiry_seconds: float = 600.0
    #: Mean virtual seconds between lifecycle starts.
    mean_gap: float = 0.1
    #: Fraction of connects that are returning users (session resume).
    return_fraction: float = 0.2
    #: Fraction of connects that do work that grows session state
    #: (async op ids, transaction handles).
    active_fraction: float = 0.1
    #: Pending async op ids a session may accumulate before the
    #: harness acknowledges them (drains the list).
    max_pending_ops: int = 8
    seed: int = 23
    #: Sample the aggregate footprint every N lifecycles.
    sample_every: int = 10_000
    #: Sweep expired sessions every N lifecycles (keeps the manager's
    #: dict near its steady-state size instead of its cap).
    sweep_every: int = 1_000


@dataclass
class ChurnReport:
    """Soak outcome: lifecycle counters + footprint bound."""

    lifecycles: int
    created: int
    resumed: int
    expired: int
    peak_live: int
    final_live: int
    #: (virtual time, live sessions, bytes per live session) samples.
    samples: list = field(default_factory=list)
    max_bytes_per_session: float = 0.0
    mean_bytes_per_session: float = 0.0

    def row(self) -> dict:
        return {
            "lifecycles": self.lifecycles,
            "created": self.created,
            "resumed": self.resumed,
            "expired": self.expired,
            "peak_live": self.peak_live,
            "max_bytes_per_session": round(self.max_bytes_per_session, 1),
            "mean_bytes_per_session": round(self.mean_bytes_per_session, 1),
        }


def run_session_churn(config: ChurnConfig | None = None) -> ChurnReport:
    """Run the soak; see :class:`ChurnConfig` for the model knobs."""
    config = config or ChurnConfig()
    rng = random.Random(config.seed)
    manager = SessionManager(
        expiry_seconds=config.expiry_seconds,
        max_sessions=config.max_sessions,
    )
    vnow = 0.0
    peak_live = 0
    samples: list[tuple[float, int, float]] = []
    # Recently seen fingerprints, for the returning-user draw.  A
    # bounded window keeps the draw O(1) and biases returns towards
    # users recent enough to still hold a live session.
    recent: list[str] = []
    recent_cap = 4 * int(config.expiry_seconds / config.mean_gap)

    for index in range(config.lifecycles):
        vnow += config.mean_gap * (0.5 + rng.random())
        if recent and rng.random() < config.return_fraction:
            fingerprint = recent[rng.randrange(len(recent))]
        else:
            fingerprint = f"fp-churn-{index:09d}"
            if len(recent) >= recent_cap:
                recent[rng.randrange(recent_cap)] = fingerprint
            else:
                recent.append(fingerprint)
        session = manager.connect(fingerprint, now=vnow)
        session.touch(vnow)
        if session.bucket is None:
            # The admission layer attaches rate state lazily on first
            # checked request; model that here so the footprint counts
            # it for every active session.
            session.bucket = TokenBucket(
                rate=100.0, burst=200.0, tokens=200.0, updated=vnow
            )
        if rng.random() < config.active_fraction:
            session.operations.append(f"op-{index:09d}")
            if len(session.operations) > config.max_pending_ops:
                # Client polled its async results: drain acknowledged ids.
                del session.operations[: -config.max_pending_ops]
            if rng.random() < 0.25:
                session.transactions.add(f"tx-{index:09d}")
            elif session.transactions:
                session.transactions.pop()
        if (index + 1) % config.sweep_every == 0:
            manager.expire_idle(vnow)
        live = len(manager)
        peak_live = max(peak_live, live)
        if (index + 1) % config.sample_every == 0 and live:
            samples.append(
                (vnow, live, manager.footprint_bytes() / live)
            )

    per_session = [bytes_per for _, _, bytes_per in samples]
    return ChurnReport(
        lifecycles=config.lifecycles,
        created=manager.created,
        resumed=manager.resumed,
        expired=manager.expired,
        peak_live=peak_live,
        final_live=len(manager),
        samples=samples,
        max_bytes_per_session=max(per_session, default=0.0),
        mean_bytes_per_session=(
            sum(per_session) / len(per_session) if per_session else 0.0
        ),
    )
