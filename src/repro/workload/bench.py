"""The workload-realism headline bench behind ``BENCH_workload.json``.

Four arrival-curve scenarios plus the session-churn soak, all on the
virtual clock, all seed-deterministic:

- **steady** — constant 0.8x-capacity offered load; the control whose
  goodput is the "steady-state peak" every other number is judged
  against.
- **diurnal** — sinusoidal breathing between 0.35x and 1.05x capacity.
- **flash** — 0.5x baseline with a 3x-capacity storm through the
  middle 40% of the horizon; the headline gate asserts goodput
  *during* the storm stays >= 70% of the steady-state peak
  (``flash_retention``).
- **hotkey** — steady 0.8x rate whose key choice collapses onto a
  4-key hot set for the middle of the run (lock/cache stress, not
  aggregate-rate stress).
- **churn** — a million session lifecycles against the real
  :class:`~repro.core.session.SessionManager`, reporting structural
  bytes per live session (must stay bounded).

The headline dict lands in ``BENCH_workload.json`` through
:mod:`repro.bench.trajectory`, so CI can regress-gate ``goodput_steady``
and ``flash_retention`` against the committed baseline.
"""

from __future__ import annotations

from repro.bench.overload import OverloadConfig, calibrate_capacity
from repro.bench.trajectory import record as record_trajectory
from repro.workload.arrival import (
    DiurnalCurve,
    FlashCrowdCurve,
    HotKeyStorm,
    SteadyCurve,
)
from repro.workload.scenarios import (
    ScenarioConfig,
    ScenarioResult,
    run_scenario,
)
from repro.workload.sessions import ChurnConfig, run_session_churn

#: Operations per scenario at scale 1.0.
OPERATIONS = 512
#: The acceptance gate: storm goodput / steady goodput.
FLASH_RETENTION_FLOOR = 0.70


def _config(name: str, seed: int) -> ScenarioConfig:
    return ScenarioConfig(name=name, seed=seed)


def run_workload_bench(
    seed: int = 17,
    operations: int = OPERATIONS,
    lifecycles: int = 1_000_000,
    record: bool = True,
) -> dict:
    """Run every scenario + the soak; returns the headline dict.

    ``record=False`` skips writing ``BENCH_workload.json`` (tests and
    CI compare against the committed file instead of rewriting it).
    """
    capacity = calibrate_capacity(OverloadConfig(seed=seed))
    horizon = operations / (0.8 * capacity)
    results: dict[str, ScenarioResult] = {}

    steady = run_scenario(
        _config("steady", seed), SteadyCurve(0.8 * capacity),
        capacity, horizon,
    )
    results["steady"] = steady

    results["diurnal"] = run_scenario(
        _config("diurnal", seed),
        DiurnalCurve(0.7 * capacity, amplitude=0.5, period=horizon / 2.0),
        capacity, horizon,
    )

    storm_start = 0.3 * horizon
    storm_duration = 0.4 * horizon
    flash_curve = FlashCrowdCurve(
        0.5 * capacity, 3.0 * capacity, storm_start, storm_duration
    )
    flash = run_scenario(
        _config("flash", seed), flash_curve, capacity, horizon
    )
    results["flash"] = flash

    hotkey_config = _config("hotkey", seed)
    storm = HotKeyStorm(
        hotkey_config.base.record_count,
        seed=seed,
        storm_start=storm_start,
        storm_duration=storm_duration,
    )
    results["hotkey"] = run_scenario(
        hotkey_config, SteadyCurve(0.8 * capacity), capacity, horizon,
        key_chooser=storm,
    )

    churn = run_session_churn(
        ChurnConfig(lifecycles=lifecycles, seed=seed)
    )

    goodput_storm = flash.goodput_in(
        storm_start, storm_start + storm_duration
    )
    retention = (
        goodput_storm / steady.goodput if steady.goodput else 0.0
    )
    headline = {
        "capacity": round(capacity, 1),
        "goodput_steady": round(steady.goodput, 1),
        "goodput_storm": round(goodput_storm, 1),
        "flash_retention": round(retention, 4),
        "shed_rate_flash": round(flash.shed_rate, 4),
        "worst_slo_flash": flash.worst_slo_state,
        "goodput_diurnal": round(results["diurnal"].goodput, 1),
        "goodput_hotkey": round(results["hotkey"].goodput, 1),
        "shed_rate_hotkey": round(results["hotkey"].shed_rate, 4),
        "p99_get_ms_steady": round(
            steady.p99_by_class.get("get/p1", 0.0) * 1e3, 3
        ),
        "p99_put_ms_steady": round(
            steady.p99_by_class.get("put/p2", 0.0) * 1e3, 3
        ),
        "acked_writes_lost": sum(
            r.acked_writes_lost for r in results.values()
        ),
        "churn_lifecycles": churn.lifecycles,
        "churn_peak_live": churn.peak_live,
        "churn_max_bytes_per_session": round(
            churn.max_bytes_per_session, 1
        ),
        "trace_sha_flash": flash.trace_sha,
    }
    if record:
        record_trajectory("workload", headline)
    return headline
