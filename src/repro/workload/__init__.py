"""Production traffic models over the YCSB machinery.

The bench suite so far measures *steady* offered load (the overload
sweep holds one rate per point).  Real million-user traffic is not
steady: it breathes diurnally, spikes when a link goes viral, and
focuses on a handful of hot keys during a storm.  This package models
those shapes deterministically on the virtual clock:

- :mod:`repro.workload.arrival` — arrival-rate curves (steady,
  diurnal sinusoid, flash-crowd step, hot-key storm) and the open-loop
  arrival-time integrator.
- :mod:`repro.workload.scenarios` — drives a real controller +
  admission stack through one curve, measuring goodput, per-class p99
  latency, shed rate, and SLO burn, with a byte-reproducible trace.
- :mod:`repro.workload.sessions` — session-churn soak: millions of
  session lifecycles against the :class:`~repro.core.session.SessionManager`,
  bounding the per-live-session state footprint.
- :mod:`repro.workload.bench` — the headline bench behind
  ``BENCH_workload.json`` and the CI regression gate.
"""

from repro.workload.arrival import (
    DiurnalCurve,
    FlashCrowdCurve,
    HotKeyStorm,
    SteadyCurve,
    generate_arrivals,
)
from repro.workload.bench import run_workload_bench
from repro.workload.scenarios import ScenarioConfig, ScenarioResult, run_scenario
from repro.workload.sessions import ChurnConfig, ChurnReport, run_session_churn

__all__ = [
    "SteadyCurve",
    "DiurnalCurve",
    "FlashCrowdCurve",
    "HotKeyStorm",
    "generate_arrivals",
    "ScenarioConfig",
    "ScenarioResult",
    "run_scenario",
    "ChurnConfig",
    "ChurnReport",
    "run_session_churn",
    "run_workload_bench",
]
