"""Metric collection for simulation experiments.

Counters, streaming mean/variance (Welford), fixed-bucket latency
histograms with percentile queries, and windowed throughput meters.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field


@dataclass
class Counter:
    """A monotonically increasing named counter."""

    name: str
    value: int = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount


class WelfordStats:
    """Streaming mean / variance / min / max in O(1) per sample."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def relative_stddev(self) -> float:
        """Coefficient of variation; the paper reports "SD < x%"."""
        return self.stddev / self.mean if self.mean else 0.0


class Histogram:
    """Latency histogram with geometric buckets and percentile queries.

    Buckets grow geometrically from ``min_value`` so microsecond and
    second scale latencies share one histogram with bounded error.
    """

    def __init__(
        self,
        min_value: float = 1e-6,
        max_value: float = 100.0,
        growth: float = 1.1,
    ):
        if min_value <= 0 or max_value <= min_value or growth <= 1.0:
            raise ValueError("invalid histogram parameters")
        bounds = [min_value]
        while bounds[-1] < max_value:
            bounds.append(bounds[-1] * growth)
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)
        self.stats = WelfordStats()

    def add(self, value: float) -> None:
        self.stats.add(value)
        index = bisect.bisect_right(self._bounds, value)
        self._counts[index] += 1

    def reset(self) -> None:
        """Clear all samples (e.g. at the end of a warmup phase)."""
        self._counts = [0] * len(self._counts)
        self.stats = WelfordStats()

    @property
    def count(self) -> int:
        return self.stats.count

    def percentile(self, pct: float) -> float:
        """Return an upper bound for the ``pct``-th percentile."""
        if not 0 < pct <= 100:
            raise ValueError("percentile must be in (0, 100]")
        if not self.stats.count:
            return 0.0
        target = math.ceil(self.stats.count * pct / 100.0)
        running = 0
        for index, count in enumerate(self._counts):
            running += count
            if running >= target:
                if index == 0:
                    return self._bounds[0]
                if index > len(self._bounds) - 1:
                    return self.stats.max
                return self._bounds[index]
        return self.stats.max

    @property
    def mean(self) -> float:
        return self.stats.mean


@dataclass
class ThroughputMeter:
    """Counts completed operations inside a measurement window.

    ``open_window`` marks the start (after warmup); ``rate`` divides
    completions by elapsed virtual time.
    """

    started_at: float | None = None
    closed_at: float | None = None
    completed: int = 0
    bytes_moved: int = 0
    _warmup_completed: int = field(default=0, repr=False)

    def open_window(self, now: float) -> None:
        self.started_at = now
        self._warmup_completed = self.completed
        self.completed = 0
        self.bytes_moved = 0

    def close_window(self, now: float) -> None:
        self.closed_at = now

    def record(self, nbytes: int = 0) -> None:
        self.completed += 1
        self.bytes_moved += nbytes

    def rate(self, now: float | None = None) -> float:
        """Operations per second over the open window."""
        if self.started_at is None:
            return 0.0
        end = self.closed_at if self.closed_at is not None else now
        if end is None or end <= self.started_at:
            return 0.0
        return self.completed / (end - self.started_at)

    def byte_rate(self, now: float | None = None) -> float:
        if self.started_at is None:
            return 0.0
        end = self.closed_at if self.closed_at is not None else now
        if end is None or end <= self.started_at:
            return 0.0
        return self.bytes_moved / (end - self.started_at)
