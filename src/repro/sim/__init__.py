"""Deterministic discrete-event simulation kernel.

Benchmarks model clients, controller threads, NICs, and drives as
generator-based processes in a shared :class:`Environment`.  Only virtual
time advances; all functional code (policy checks, encryption, the
Kinetic keyspace) runs for real inside process steps.
"""

from repro.sim.core import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from repro.sim.resources import Resource, Store
from repro.sim.stats import Counter, Histogram, ThroughputMeter, WelfordStats

__all__ = [
    "AllOf",
    "AnyOf",
    "Counter",
    "Environment",
    "Event",
    "Histogram",
    "Interrupt",
    "Process",
    "Resource",
    "SimulationError",
    "Store",
    "ThroughputMeter",
    "Timeout",
    "WelfordStats",
]
