"""Shared resources for simulated processes: servers and message stores."""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.sim.core import Environment, Event, SimulationError


class Resource:
    """A capacity-bounded server pool with a FIFO wait queue.

    A process acquires a slot with ``yield resource.acquire()`` and must
    release it with ``resource.release()``.  Used to model CPU cores,
    controller worker threads, disk queues, and NIC serialization.
    """

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiters: deque[Event] = deque()
        # Metrics for utilization accounting.
        self._busy_time = 0.0
        self._last_change = env.now
        self.total_acquired = 0

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_len(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Event:
        """Return an event that fires once a slot is held."""
        event = self.env.event()
        if self._in_use < self.capacity:
            self._account()
            self._in_use += 1
            self.total_acquired += 1
            event.succeed(self)
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Free one held slot, waking the oldest waiter."""
        if self._in_use <= 0:
            raise SimulationError("release() without acquire()")
        if self._waiters:
            # Hand the slot directly to the next waiter; _in_use unchanged.
            self.total_acquired += 1
            self._waiters.popleft().succeed(self)
        else:
            self._account()
            self._in_use -= 1

    def utilization(self) -> float:
        """Busy fraction (slot-seconds used / slot-seconds offered)."""
        self._account()
        elapsed = self.env.now
        if elapsed <= 0:
            return 0.0
        return self._busy_time / (elapsed * self.capacity)

    def _account(self) -> None:
        now = self.env.now
        self._busy_time += self._in_use * (now - self._last_change)
        self._last_change = now


class Store:
    """An unbounded FIFO message queue between processes.

    ``put`` never blocks; ``get`` returns an event that fires when an
    item is available.  Models syscall submission/return queues and the
    Kinetic client's pending-request ring buffer.
    """

    def __init__(self, env: Environment, capacity: int | None = None):
        self.env = env
        self.capacity = capacity
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self.total_put = 0
        self.max_depth = 0

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Enqueue ``item``; wakes one pending getter if any."""
        if self.capacity is not None and len(self._items) >= self.capacity:
            raise SimulationError("store is full")
        self.total_put += 1
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)
            self.max_depth = max(self.max_depth, len(self._items))

    def get(self) -> Event:
        """Return an event yielding the next item."""
        event = self.env.event()
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event
