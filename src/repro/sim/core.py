"""Event loop, events, and generator-based processes.

The design follows the classic SimPy model: a process is a Python
generator that yields :class:`Event` objects; the environment resumes it
when the yielded event fires.  Determinism is guaranteed by a strict
(time, sequence) ordering on the event heap — two events scheduled for
the same instant fire in scheduling order.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Generator
from typing import Any

from repro.errors import PesosError


class SimulationError(PesosError):
    """Misuse of the simulation kernel (double trigger, bad yield...)."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence processes can wait on.

    An event is *triggered* with either a value (:meth:`succeed`) or an
    exception (:meth:`fail`).  Processes waiting on it are resumed at the
    current simulation instant.
    """

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list[Callable[[Event], None]] = []
        self._value: Any = None
        self._exception: BaseException | None = None
        self._triggered = False
        self._processed = False
        self._defused = False  # failure was delivered to a waiter

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event has not been triggered")
        if self._exception is not None:
            raise self._exception
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() needs an exception instance")
        self._triggered = True
        self._exception = exception
        self.env._schedule(self)
        return self


class Timeout(Event):
    """An event that fires ``delay`` time units in the future."""

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._triggered = True
        self._value = value
        env._schedule(self, delay)


class Process(Event):
    """Wraps a generator; itself an event that fires on generator exit."""

    def __init__(self, env: "Environment", generator: Generator):
        super().__init__(env)
        self._generator = generator
        self._target: Event | None = None
        # Bootstrap: resume the generator at the current instant.
        bootstrap = Event(env)
        bootstrap.callbacks.append(self._resume)
        bootstrap._triggered = True
        env._schedule(bootstrap)

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at this instant."""
        if self._triggered:
            return  # already finished; interrupt is a no-op
        wakeup = Event(self.env)
        wakeup.callbacks.append(
            lambda _ev: self._resume_with_exception(Interrupt(cause))
        )
        wakeup._triggered = True
        self.env._schedule(wakeup)

    # -- internals ----------------------------------------------------

    def _resume(self, event: Event) -> None:
        if self._triggered:
            return
        self._target = None
        try:
            if event._exception is not None:
                target = self._generator.throw(event._exception)
            else:
                target = self._generator.send(
                    event._value if event is not self else None
                )
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except BaseException as exc:
            self._finish_error(exc)
            return
        self._wait_on(target)

    def _resume_with_exception(self, exc: BaseException) -> None:
        if self._triggered:
            return
        if self._target is not None and self in self._target.callbacks:
            self._target.callbacks.remove(self)
        try:
            target = self._generator.throw(exc)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except BaseException as err:
            self._finish_error(err)
            return
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if not isinstance(target, Event):
            self._finish_error(
                SimulationError(f"process yielded non-event {target!r}")
            )
            return
        self._target = target
        if target._processed:
            # Already fired: resume immediately at this instant.
            immediate = Event(self.env)
            immediate.callbacks.append(self._resume)
            immediate._triggered = True
            immediate._value = target._value
            immediate._exception = target._exception
            self.env._schedule(immediate)
        else:
            target.callbacks.append(self._resume)

    def __call__(self, event: Event) -> None:
        # Used as a callback on the awaited event.
        self._resume(event)

    def _finish(self, value: Any) -> None:
        self._triggered = True
        self._value = value
        self.env._schedule(self)

    def _finish_error(self, exc: BaseException) -> None:
        self._triggered = True
        self._exception = exc
        self.env._schedule(self)
        self.env._record_failure(self, exc)


class _Condition(Event):
    """Base for AnyOf / AllOf composite events."""

    def __init__(self, env: "Environment", events: list[Event]):
        super().__init__(env)
        self.events = list(events)
        self._pending = 0
        for ev in self.events:
            if ev._processed or ev._triggered:
                self._on_child(ev)
            else:
                ev.callbacks.append(self._on_child)
                self._pending += 1
        self._check_after_init()

    def _check_after_init(self) -> None:
        raise NotImplementedError

    def _on_child(self, event: Event) -> None:
        raise NotImplementedError


class AnyOf(_Condition):
    """Fires when the first of ``events`` fires; value is that event."""

    def _check_after_init(self) -> None:
        for ev in self.events:
            if ev._triggered and not self._triggered:
                self.succeed(ev)
                return

    def _on_child(self, event: Event) -> None:
        if not self._triggered:
            if event._exception is not None:
                self.fail(event._exception)
            else:
                self.succeed(event)


class AllOf(_Condition):
    """Fires when every event has fired; value is the list of values."""

    def _check_after_init(self) -> None:
        self._maybe_finish()

    def _on_child(self, event: Event) -> None:
        if event._exception is not None and not self._triggered:
            self.fail(event._exception)
            return
        self._maybe_finish()

    def _maybe_finish(self) -> None:
        if self._triggered:
            return
        if all(ev._triggered for ev in self.events):
            values = []
            for ev in self.events:
                if ev._exception is not None:
                    self.fail(ev._exception)
                    return
                values.append(ev._value)
            self.succeed(values)


class Environment:
    """The simulation clock and event queue."""

    def __init__(self, initial_time: float = 0.0):
        self._now = initial_time
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._failures: list[tuple[Process, BaseException]] = []

    @property
    def now(self) -> float:
        return self._now

    # -- factory helpers ------------------------------------------------

    def process(self, generator: Generator) -> Process:
        """Register a generator as a process starting now."""
        return Process(self, generator)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def event(self) -> Event:
        return Event(self)

    def any_of(self, events: list[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: list[Event]) -> AllOf:
        return AllOf(self, events)

    # -- execution ------------------------------------------------------

    def run(self, until: float | Event | None = None) -> Any:
        """Run until the heap drains, ``until`` time passes, or event fires."""
        stop_event: Event | None = None
        deadline: float | None = None
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            deadline = float(until)
            if deadline < self._now:
                raise SimulationError("until lies in the past")

        while self._heap:
            when, _seq, event = self._heap[0]
            if deadline is not None and when > deadline:
                self._now = deadline
                return None
            heapq.heappop(self._heap)
            self._now = when
            self._process_event(event)
            if stop_event is not None and stop_event._processed:
                return stop_event.value
        if deadline is not None:
            self._now = deadline
        if stop_event is not None and not stop_event._triggered:
            raise SimulationError("simulation ended before stop event fired")
        return None

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf when idle."""
        return self._heap[0][0] if self._heap else float("inf")

    # -- internals ------------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, self._seq, event))

    def _process_event(self, event: Event) -> None:
        event._processed = True
        callbacks, event.callbacks = event.callbacks, []
        if callbacks and event._exception is not None:
            event._defused = True
        for callback in callbacks:
            callback(event)
        if event._exception is not None and not callbacks:
            if not isinstance(event, Process):
                raise event._exception

    def _record_failure(self, process: Process, exc: BaseException) -> None:
        self._failures.append((process, exc))

    def check_failures(self) -> None:
        """Re-raise the first unhandled process failure, if any."""
        for process, exc in self._failures:
            if not process._defused:  # nobody waited on it
                raise exc
