"""Fast authenticated encryption for the object data path.

Pesos encrypts every object with AES-GCM before it reaches a drive.
Our AES-GCM (:mod:`repro.crypto.gcm`) is pure Python and therefore too
slow for benchmark workloads that push 100k objects through the
functional data path.  :class:`StreamAead` provides the same interface
and guarantees — confidentiality plus integrity with associated data —
built from SHA-256 primitives that run at C speed in the standard
library:

- keystream: ``SHA256(key || nonce || counter)`` blocks XORed over the
  plaintext (a CTR-mode PRF cipher);
- authentication: encrypt-then-MAC with HMAC-SHA256 over
  ``nonce || aad || ciphertext`` under a separate derived key.

The controller accepts any object with this interface, so deployments
wanting literal AES-GCM can pass :class:`GcmAead`.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.crypto.gcm import AesGcm
from repro.errors import CryptoError, IntegrityError

_BLOCK = 32  # SHA-256 digest size


class StreamAead:
    """SHA-256-CTR + HMAC-SHA256 AEAD (see module docstring)."""

    TAG_SIZE = 16
    NONCE_SIZE = 12

    def __init__(self, key: bytes):
        if len(key) < 16:
            raise CryptoError("AEAD key must be at least 16 bytes")
        self._enc_key = hashlib.sha256(b"enc" + key).digest()
        self._mac_key = hashlib.sha256(b"mac" + key).digest()

    def _keystream(self, nonce: bytes, length: int) -> bytes:
        blocks = []
        for counter in range((length + _BLOCK - 1) // _BLOCK):
            blocks.append(
                hashlib.sha256(
                    self._enc_key + nonce + counter.to_bytes(8, "big")
                ).digest()
            )
        return b"".join(blocks)[:length]

    def _tag(self, nonce: bytes, aad: bytes, ciphertext: bytes) -> bytes:
        mac = hmac.new(self._mac_key, digestmod=hashlib.sha256)
        mac.update(nonce)
        mac.update(len(aad).to_bytes(8, "big"))
        mac.update(aad)
        mac.update(ciphertext)
        return mac.digest()[: self.TAG_SIZE]

    @staticmethod
    def _xor(data: bytes, keystream: bytes) -> bytes:
        # Big-int XOR runs at C speed, unlike a per-byte loop.
        if not data:
            return b""
        return (
            int.from_bytes(data, "big") ^ int.from_bytes(keystream, "big")
        ).to_bytes(len(data), "big")

    def seal(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Encrypt and authenticate; returns ``ciphertext || tag``."""
        if len(nonce) != self.NONCE_SIZE:
            raise CryptoError(f"nonce must be 12 bytes, got {len(nonce)}")
        keystream = self._keystream(nonce, len(plaintext))
        ciphertext = self._xor(plaintext, keystream)
        return ciphertext + self._tag(nonce, aad, ciphertext)

    def open(self, nonce: bytes, blob: bytes, aad: bytes = b"") -> bytes:
        """Verify and decrypt a sealed blob."""
        if len(nonce) != self.NONCE_SIZE:
            raise CryptoError(f"nonce must be 12 bytes, got {len(nonce)}")
        if len(blob) < self.TAG_SIZE:
            raise IntegrityError("sealed blob shorter than a tag")
        ciphertext, tag = blob[: -self.TAG_SIZE], blob[-self.TAG_SIZE :]
        expected = self._tag(nonce, aad, ciphertext)
        if not hmac.compare_digest(expected, tag):
            raise IntegrityError("AEAD tag mismatch")
        keystream = self._keystream(nonce, len(ciphertext))
        return self._xor(ciphertext, keystream)


class GcmAead:
    """AES-GCM behind the same seal/open interface (slow, literal)."""

    TAG_SIZE = AesGcm.TAG_SIZE
    NONCE_SIZE = AesGcm.NONCE_SIZE

    def __init__(self, key: bytes):
        self._gcm = AesGcm(key)

    def seal(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        return self._gcm.seal(nonce, plaintext, aad)

    def open(self, nonce: bytes, blob: bytes, aad: bytes = b"") -> bytes:
        return self._gcm.open(nonce, blob, aad)


class NullAead:
    """No-op cipher for ablation benchmarks (encryption-off baseline)."""

    TAG_SIZE = 0
    NONCE_SIZE = 12

    def __init__(self, key: bytes = b""):
        pass

    def seal(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        return plaintext

    def open(self, nonce: bytes, blob: bytes, aad: bytes = b"") -> bytes:
        return blob
