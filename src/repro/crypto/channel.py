"""Mutually-authenticated secure channel (the TLS stand-in).

Client ↔ controller and controller ↔ drive links in Pesos are mutually
authenticated TLS connections terminated inside the enclave.  This
module implements the equivalent protocol with our own primitives:

1. Both sides exchange nonces and certificates.
2. Each side verifies the peer certificate against its trust store.
3. An ephemeral finite-field Diffie-Hellman exchange (RFC 3526 group 14)
   produces a shared secret; each side signs the handshake transcript
   with its long-term RSA key (a SIGMA-style handshake), preventing
   man-in-the-middle attacks.
4. Both sides derive directional AES-GCM record keys via HKDF-SHA256.

Records carry a sequence number used as the GCM nonce, giving replay
protection and enforcing in-order delivery.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets
from dataclasses import dataclass

from repro.crypto.certs import Certificate, KeyPair, TrustStore
from repro.crypto.gcm import AesGcm
from repro.errors import CertificateError, IntegrityError

# RFC 3526 MODP group 14 (2048-bit) prime; generator 2.
_DH_PRIME = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF",
    16,
)
_DH_GENERATOR = 2


def _hkdf(secret: bytes, salt: bytes, info: bytes, length: int) -> bytes:
    """HKDF-SHA256 extract-and-expand (RFC 5869)."""
    prk = hmac.new(salt, secret, hashlib.sha256).digest()
    blocks = b""
    output = b""
    counter = 1
    while len(output) < length:
        blocks = hmac.new(
            prk, blocks + info + bytes([counter]), hashlib.sha256
        ).digest()
        output += blocks
        counter += 1
    return output[:length]


@dataclass
class HandshakeMessage:
    """One side's contribution to the handshake transcript."""

    nonce: bytes
    dh_public: int
    certificate: Certificate

    def transcript_bytes(self) -> bytes:
        return (
            self.nonce
            + self.dh_public.to_bytes(256, "big")
            + self.certificate.tbs_bytes()
        )


class SecureChannel:
    """One endpoint of an established channel: GCM records + sequencing."""

    def __init__(
        self,
        send_key: bytes,
        recv_key: bytes,
        peer_certificate: Certificate,
        local_certificate: Certificate,
    ):
        self._send_gcm = AesGcm(send_key)
        self._recv_gcm = AesGcm(recv_key)
        self._send_seq = 0
        self._recv_seq = 0
        self.peer_certificate = peer_certificate
        self.local_certificate = local_certificate
        self.bytes_sent = 0
        self.bytes_received = 0

    @property
    def peer_fingerprint(self) -> str:
        """Identifies the authenticated peer (used for access control)."""
        return self.peer_certificate.fingerprint()

    def send(self, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Protect ``plaintext`` into a record blob."""
        nonce = self._send_seq.to_bytes(12, "big")
        self._send_seq += 1
        record = self._send_gcm.seal(nonce, plaintext, aad)
        self.bytes_sent += len(record)
        return record

    def recv(self, record: bytes, aad: bytes = b"") -> bytes:
        """Open the next record; raises on tamper, replay, or reorder."""
        nonce = self._recv_seq.to_bytes(12, "big")
        self._recv_seq += 1
        plaintext = self._recv_gcm.open(nonce, record, aad)
        self.bytes_received += len(record)
        return plaintext


def _derive_keys(
    shared_secret: int, nonce_a: bytes, nonce_b: bytes
) -> tuple[bytes, bytes]:
    secret_bytes = shared_secret.to_bytes(256, "big")
    material = _hkdf(
        secret_bytes, salt=nonce_a + nonce_b, info=b"pesos-channel", length=32
    )
    return material[:16], material[16:]


def establish_channel(
    initiator: KeyPair,
    responder: KeyPair,
    initiator_trust: TrustStore,
    responder_trust: TrustStore,
    now: float = 0.0,
) -> tuple[SecureChannel, SecureChannel]:
    """Run the full handshake in-process; returns both endpoints.

    Raises :class:`CertificateError` if either side rejects the peer's
    certificate, or :class:`IntegrityError` if a transcript signature
    fails (simulated man-in-the-middle).
    """
    # Step 1+2: hellos with nonces, ephemeral DH shares, certificates.
    init_secret = secrets.randbits(256)
    resp_secret = secrets.randbits(256)
    init_hello = HandshakeMessage(
        nonce=secrets.token_bytes(32),
        dh_public=pow(_DH_GENERATOR, init_secret, _DH_PRIME),
        certificate=initiator.certificate,
    )
    resp_hello = HandshakeMessage(
        nonce=secrets.token_bytes(32),
        dh_public=pow(_DH_GENERATOR, resp_secret, _DH_PRIME),
        certificate=responder.certificate,
    )

    # Step 3: mutual certificate verification.
    responder_trust.verify(init_hello.certificate, now)
    initiator_trust.verify(resp_hello.certificate, now)

    # Step 4: transcript signatures (SIGMA binding of DH to identities).
    transcript = init_hello.transcript_bytes() + resp_hello.transcript_bytes()
    init_sig = initiator.private_key.sign(b"init" + transcript)
    resp_sig = responder.private_key.sign(b"resp" + transcript)
    if not initiator.certificate.public_key.verify(b"init" + transcript, init_sig):
        raise IntegrityError("initiator transcript signature invalid")
    if not responder.certificate.public_key.verify(b"resp" + transcript, resp_sig):
        raise IntegrityError("responder transcript signature invalid")

    # Step 5: key derivation.  Both sides compute the same shared secret.
    shared_init = pow(resp_hello.dh_public, init_secret, _DH_PRIME)
    shared_resp = pow(init_hello.dh_public, resp_secret, _DH_PRIME)
    if shared_init != shared_resp:  # pragma: no cover - math guarantees this
        raise IntegrityError("DH agreement failure")
    key_i2r, key_r2i = _derive_keys(
        shared_init, init_hello.nonce, resp_hello.nonce
    )

    initiator_end = SecureChannel(
        send_key=key_i2r,
        recv_key=key_r2i,
        peer_certificate=resp_hello.certificate,
        local_certificate=initiator.certificate,
    )
    responder_end = SecureChannel(
        send_key=key_r2i,
        recv_key=key_i2r,
        peer_certificate=init_hello.certificate,
        local_certificate=responder.certificate,
    )
    return initiator_end, responder_end
