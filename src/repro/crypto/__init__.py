"""Cryptographic substrate.

Pesos relies on OpenSSL for TLS, AES-GCM object encryption, and X.509
client/disk identities.  This package provides functionally equivalent
pure-Python primitives:

- :mod:`repro.crypto.aes` — the AES block cipher (FIPS-197).
- :mod:`repro.crypto.gcm` — AES-GCM authenticated encryption (SP 800-38D).
- :mod:`repro.crypto.rsa` — RSA keygen and PKCS#1 v1.5 signatures.
- :mod:`repro.crypto.certs` — certificates with chains and CA verification.
- :mod:`repro.crypto.channel` — a mutually-authenticated secure channel
  (the TLS stand-in used between clients, the controller, and drives).

Pure Python is slow in wall-clock terms; benchmark experiments charge
crypto cost in *virtual* time while the functional data path really
encrypts, so confidentiality-relevant behaviour is always exercised.
"""

from repro.crypto.aes import AES
from repro.crypto.certs import Certificate, CertificateAuthority, KeyPair
from repro.crypto.gcm import AesGcm, GcmTagError
from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey, generate_keypair
from repro.crypto.channel import SecureChannel, establish_channel

__all__ = [
    "AES",
    "AesGcm",
    "Certificate",
    "CertificateAuthority",
    "GcmTagError",
    "KeyPair",
    "RsaPrivateKey",
    "RsaPublicKey",
    "SecureChannel",
    "establish_channel",
    "generate_keypair",
]
