"""AES-GCM authenticated encryption (NIST SP 800-38D).

Pesos transparently encrypts every object with AES-GCM before it leaves
the enclave for a Kinetic drive (§2.2), and session channels use GCM for
record protection.  We implement CTR-mode encryption plus the GHASH
authenticator over GF(2^128), verified against the original GCM spec
test vectors.
"""

from __future__ import annotations

import hmac

from repro.crypto.aes import AES, BLOCK_SIZE
from repro.errors import CryptoError, IntegrityError


class GcmTagError(IntegrityError):
    """The GCM authentication tag did not verify: data tampered or wrong key."""


# GHASH reduction polynomial: x^128 + x^7 + x^2 + x + 1 (bit-reflected form).
_R = 0xE1000000000000000000000000000000


def _gf128_mul(x: int, y: int) -> int:
    """Multiply in GF(2^128) per the GCM bit ordering."""
    z = 0
    v = x
    for i in range(127, -1, -1):
        if (y >> i) & 1:
            z ^= v
        if v & 1:
            v = (v >> 1) ^ _R
        else:
            v >>= 1
    return z


def _block_to_int(block: bytes) -> int:
    return int.from_bytes(block, "big")


def _int_to_block(value: int) -> bytes:
    return value.to_bytes(BLOCK_SIZE, "big")


def _inc32(counter: bytes) -> bytes:
    """Increment the low 32 bits of a counter block, wrapping mod 2^32."""
    prefix, low = counter[:12], int.from_bytes(counter[12:], "big")
    return prefix + ((low + 1) & 0xFFFFFFFF).to_bytes(4, "big")


class AesGcm:
    """AES-GCM with a fixed key.

    >>> gcm = AesGcm(bytes(16))
    >>> ct, tag = gcm.encrypt(bytes(12), b"secret", b"header")
    >>> gcm.decrypt(bytes(12), ct, tag, b"header")
    b'secret'
    """

    TAG_SIZE = 16
    NONCE_SIZE = 12

    def __init__(self, key: bytes):
        self._aes = AES(key)
        self._h = _block_to_int(self._aes.encrypt_block(bytes(BLOCK_SIZE)))

    # -- GHASH ----------------------------------------------------------

    def _ghash(self, aad: bytes, ciphertext: bytes) -> bytes:
        y = 0
        for chunk in self._padded_blocks(aad):
            y = _gf128_mul(y ^ _block_to_int(chunk), self._h)
        for chunk in self._padded_blocks(ciphertext):
            y = _gf128_mul(y ^ _block_to_int(chunk), self._h)
        lengths = (len(aad) * 8).to_bytes(8, "big") + (
            len(ciphertext) * 8
        ).to_bytes(8, "big")
        y = _gf128_mul(y ^ _block_to_int(lengths), self._h)
        return _int_to_block(y)

    @staticmethod
    def _padded_blocks(data: bytes):
        for offset in range(0, len(data), BLOCK_SIZE):
            chunk = data[offset : offset + BLOCK_SIZE]
            if len(chunk) < BLOCK_SIZE:
                chunk = chunk + bytes(BLOCK_SIZE - len(chunk))
            yield chunk

    # -- CTR keystream ----------------------------------------------------

    def _ctr(self, initial_counter: bytes, data: bytes) -> bytes:
        out = bytearray()
        counter = initial_counter
        for offset in range(0, len(data), BLOCK_SIZE):
            counter = _inc32(counter)
            keystream = self._aes.encrypt_block(counter)
            chunk = data[offset : offset + BLOCK_SIZE]
            out.extend(a ^ b for a, b in zip(chunk, keystream))
        return bytes(out)

    def _j0(self, nonce: bytes) -> bytes:
        if len(nonce) == self.NONCE_SIZE:
            return nonce + b"\x00\x00\x00\x01"
        # Non-96-bit nonces are GHASHed per the spec.
        return self._ghash(b"", nonce)[:12] + self._ghash(b"", nonce)[12:]

    # -- public API -------------------------------------------------------

    def encrypt(
        self, nonce: bytes, plaintext: bytes, aad: bytes = b""
    ) -> tuple[bytes, bytes]:
        """Encrypt ``plaintext``; returns ``(ciphertext, tag)``."""
        if len(nonce) != self.NONCE_SIZE:
            raise CryptoError(f"nonce must be 12 bytes, got {len(nonce)}")
        j0 = self._j0(nonce)
        ciphertext = self._ctr(j0, plaintext)
        s = self._ghash(aad, ciphertext)
        tag_stream = self._aes.encrypt_block(j0)
        tag = bytes(a ^ b for a, b in zip(s, tag_stream))
        return ciphertext, tag

    def decrypt(
        self, nonce: bytes, ciphertext: bytes, tag: bytes, aad: bytes = b""
    ) -> bytes:
        """Verify ``tag`` then decrypt; raises :class:`GcmTagError` on tamper."""
        if len(nonce) != self.NONCE_SIZE:
            raise CryptoError(f"nonce must be 12 bytes, got {len(nonce)}")
        j0 = self._j0(nonce)
        s = self._ghash(aad, ciphertext)
        tag_stream = self._aes.encrypt_block(j0)
        expected = bytes(a ^ b for a, b in zip(s, tag_stream))
        if not hmac.compare_digest(expected, tag):
            raise GcmTagError("GCM tag mismatch")
        return self._ctr(j0, ciphertext)

    def seal(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Encrypt and append the tag (convenient single-blob format)."""
        ciphertext, tag = self.encrypt(nonce, plaintext, aad)
        return ciphertext + tag

    def open(self, nonce: bytes, blob: bytes, aad: bytes = b"") -> bytes:
        """Inverse of :meth:`seal`."""
        if len(blob) < self.TAG_SIZE:
            raise GcmTagError("sealed blob shorter than a tag")
        return self.decrypt(
            nonce, blob[: -self.TAG_SIZE], blob[-self.TAG_SIZE :], aad
        )
