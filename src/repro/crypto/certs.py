"""Certificates, authorities, and chain verification.

The X.509 stand-in used throughout the reproduction.  A certificate
binds a subject name to an RSA public key and may carry *claims* —
certified tuples such as ``time(1518652800)`` or ``group("staff")`` —
which the policy predicate ``certificateSays`` inspects.

Certificates serialize to canonical JSON so signatures are stable.
"""

from __future__ import annotations

import json
import secrets
from dataclasses import dataclass, field, replace

from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey, generate_keypair
from repro.errors import CertificateError


def _canonical(data: dict) -> bytes:
    return json.dumps(data, sort_keys=True, separators=(",", ":")).encode()


@dataclass(frozen=True)
class Certificate:
    """A signed binding of a subject to a public key plus claims."""

    subject: str
    public_key: RsaPublicKey
    issuer: str
    serial: int
    not_before: float
    not_after: float
    claims: tuple = ()  # tuple of (name, args-tuple) claims
    nonce: str = ""  # freshness nonce for time certificates
    signature: bytes = b""

    def tbs_bytes(self) -> bytes:
        """Canonical to-be-signed byte string."""
        return _canonical(
            {
                "subject": self.subject,
                "public_key": self.public_key.to_dict(),
                "issuer": self.issuer,
                "serial": self.serial,
                "not_before": self.not_before,
                "not_after": self.not_after,
                "claims": [
                    [name, list(args)] for name, args in self.claims
                ],
                "nonce": self.nonce,
            }
        )

    def fingerprint(self) -> str:
        return self.public_key.fingerprint()

    def is_valid_at(self, now: float) -> bool:
        return self.not_before <= now <= self.not_after

    def verify_signature(self, issuer_key: RsaPublicKey) -> bool:
        return issuer_key.verify(self.tbs_bytes(), self.signature)

    def claim_args(self, name: str) -> tuple | None:
        """Arguments of the first claim with ``name``, or ``None``."""
        for claim_name, args in self.claims:
            if claim_name == name:
                return args
        return None

    def to_dict(self) -> dict:
        data = json.loads(self.tbs_bytes())
        data["signature"] = self.signature.hex()
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Certificate":
        return cls(
            subject=data["subject"],
            public_key=RsaPublicKey.from_dict(data["public_key"]),
            issuer=data["issuer"],
            serial=int(data["serial"]),
            not_before=float(data["not_before"]),
            not_after=float(data["not_after"]),
            claims=tuple(
                (name, tuple(args)) for name, args in data.get("claims", [])
            ),
            nonce=data.get("nonce", ""),
            signature=bytes.fromhex(data["signature"]),
        )


@dataclass
class KeyPair:
    """A private key together with its certificate."""

    private_key: RsaPrivateKey
    certificate: Certificate

    @property
    def public_key(self) -> RsaPublicKey:
        return self.private_key.public_key

    def fingerprint(self) -> str:
        return self.public_key.fingerprint()


class CertificateAuthority:
    """Issues and verifies certificates; may itself be issued by a parent.

    >>> ca = CertificateAuthority("root")
    >>> alice = ca.issue_keypair("alice")
    >>> ca.verify_chain(alice.certificate, now=0.0)
    """

    DEFAULT_LIFETIME = 10 * 365 * 24 * 3600.0

    def __init__(
        self,
        name: str,
        key_bits: int = 1024,
        parent: "CertificateAuthority | None" = None,
    ):
        self.name = name
        self.parent = parent
        self._key = generate_keypair(bits=key_bits)
        self._serial = 0
        if parent is None:
            self.certificate = self._self_sign()
        else:
            self.certificate = parent.issue_certificate(
                subject=name, public_key=self._key.public_key, is_ca=True
            )

    @property
    def public_key(self) -> RsaPublicKey:
        return self._key.public_key

    def _self_sign(self) -> Certificate:
        cert = Certificate(
            subject=self.name,
            public_key=self._key.public_key,
            issuer=self.name,
            serial=0,
            not_before=0.0,
            not_after=self.DEFAULT_LIFETIME,
            claims=(("ca", (self.name,)),),
        )
        return replace(cert, signature=self._key.sign(cert.tbs_bytes()))

    def issue_certificate(
        self,
        subject: str,
        public_key: RsaPublicKey,
        claims: tuple = (),
        not_before: float = 0.0,
        lifetime: float | None = None,
        nonce: str = "",
        is_ca: bool = False,
    ) -> Certificate:
        """Sign a certificate for ``subject``'s ``public_key``."""
        self._serial += 1
        all_claims = tuple(claims)
        if is_ca:
            all_claims += (("ca", (subject,)),)
        cert = Certificate(
            subject=subject,
            public_key=public_key,
            issuer=self.name,
            serial=self._serial,
            not_before=not_before,
            not_after=not_before + (lifetime or self.DEFAULT_LIFETIME),
            claims=all_claims,
            nonce=nonce,
        )
        return replace(cert, signature=self._key.sign(cert.tbs_bytes()))

    def issue_keypair(
        self, subject: str, claims: tuple = (), key_bits: int = 1024
    ) -> KeyPair:
        """Generate a fresh key and certify it in one step."""
        private_key = generate_keypair(bits=key_bits)
        cert = self.issue_certificate(
            subject=subject, public_key=private_key.public_key, claims=claims
        )
        return KeyPair(private_key=private_key, certificate=cert)

    def verify_chain(self, cert: Certificate, now: float) -> None:
        """Walk issuers up to this CA; raises :class:`CertificateError`."""
        if not cert.is_valid_at(now):
            raise CertificateError(
                f"certificate for {cert.subject!r} outside validity window"
            )
        authority: CertificateAuthority | None = self
        while authority is not None:
            if cert.issuer == authority.name:
                if cert.verify_signature(authority.public_key):
                    return
                raise CertificateError(
                    f"bad signature on certificate for {cert.subject!r}"
                )
            authority = authority.parent
        raise CertificateError(
            f"issuer {cert.issuer!r} is not in the trust chain"
        )


@dataclass
class TrustStore:
    """A set of trusted authorities used by channel endpoints."""

    authorities: list[CertificateAuthority] = field(default_factory=list)

    def add(self, authority: CertificateAuthority) -> None:
        self.authorities.append(authority)

    def verify(self, cert: Certificate, now: float) -> None:
        errors = []
        for authority in self.authorities:
            try:
                authority.verify_chain(cert, now)
                return
            except CertificateError as exc:
                errors.append(str(exc))
        raise CertificateError(
            f"no trust anchor accepts {cert.subject!r}: {errors}"
        )


def random_serial() -> int:
    """A random 63-bit serial for ad-hoc certificates."""
    return secrets.randbits(63)
