"""RSA key generation and PKCS#1 v1.5 signatures over SHA-256.

Certificates in this reproduction (client identities, drive identities,
time-authority certs) are signed with RSA.  Key generation uses
Miller-Rabin primality testing; signing/verification follow RFC 8017
EMSA-PKCS1-v1_5 with the SHA-256 DigestInfo prefix.

Keys default to 1024 bits: secure-enough for a simulation substrate and
an order of magnitude faster to generate in pure Python than 2048-bit
keys (benchmarks charge the cost of 2048-bit operations in virtual
time).
"""

from __future__ import annotations

import hashlib
import secrets
from dataclasses import dataclass

from repro.errors import CryptoError, IntegrityError

# ASN.1 DigestInfo prefix for SHA-256 (RFC 8017 §9.2 note 1).
_SHA256_PREFIX = bytes.fromhex("3031300d060960864801650304020105000420")

_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139,
    149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
]


def _is_probable_prime(n: int, rounds: int = 40) -> bool:
    """Miller-Rabin with random bases (error < 4^-rounds)."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = secrets.randbelow(n - 3) + 2
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def _random_prime(bits: int) -> int:
    """Generate a random prime with the top two bits set."""
    while True:
        candidate = secrets.randbits(bits)
        candidate |= (1 << (bits - 1)) | (1 << (bits - 2)) | 1
        if _is_probable_prime(candidate):
            return candidate


@dataclass(frozen=True)
class RsaPublicKey:
    """An RSA public key ``(n, e)``."""

    n: int
    e: int

    @property
    def size_bytes(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def fingerprint(self) -> str:
        """Short stable identifier used in policies (``sessionKeyIs``)."""
        material = self.n.to_bytes(self.size_bytes, "big") + self.e.to_bytes(
            4, "big"
        )
        return hashlib.sha256(material).hexdigest()[:32]

    def verify(self, message: bytes, signature: bytes) -> bool:
        """Verify a PKCS#1 v1.5 SHA-256 signature; never raises."""
        if len(signature) != self.size_bytes:
            return False
        sig_int = int.from_bytes(signature, "big")
        if sig_int >= self.n:
            return False
        em = pow(sig_int, self.e, self.n).to_bytes(self.size_bytes, "big")
        return em == _emsa_pkcs1_v15(message, self.size_bytes)

    def to_dict(self) -> dict:
        return {"n": hex(self.n), "e": self.e}

    @classmethod
    def from_dict(cls, data: dict) -> "RsaPublicKey":
        return cls(n=int(data["n"], 16), e=int(data["e"]))


@dataclass(frozen=True)
class RsaPrivateKey:
    """An RSA private key with CRT parameters for fast signing."""

    n: int
    e: int
    d: int
    p: int
    q: int

    @property
    def public_key(self) -> RsaPublicKey:
        return RsaPublicKey(self.n, self.e)

    @property
    def size_bytes(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def sign(self, message: bytes) -> bytes:
        """Produce a PKCS#1 v1.5 SHA-256 signature."""
        em = _emsa_pkcs1_v15(message, self.size_bytes)
        m = int.from_bytes(em, "big")
        # CRT: s = sq + q * (qinv * (sp - sq) mod p)
        dp = self.d % (self.p - 1)
        dq = self.d % (self.q - 1)
        qinv = pow(self.q, -1, self.p)
        sp = pow(m, dp, self.p)
        sq = pow(m, dq, self.q)
        h = (qinv * (sp - sq)) % self.p
        s = sq + self.q * h
        return s.to_bytes(self.size_bytes, "big")


def _emsa_pkcs1_v15(message: bytes, em_len: int) -> bytes:
    """EMSA-PKCS1-v1_5 encoding of SHA-256(message)."""
    digest = hashlib.sha256(message).digest()
    t = _SHA256_PREFIX + digest
    if em_len < len(t) + 11:
        raise CryptoError("RSA modulus too small for SHA-256 signature")
    padding = b"\xff" * (em_len - len(t) - 3)
    return b"\x00\x01" + padding + b"\x00" + t


def generate_keypair(bits: int = 1024, e: int = 65537) -> RsaPrivateKey:
    """Generate an RSA keypair.

    >>> key = generate_keypair(bits=512)
    >>> key.public_key.verify(b"msg", key.sign(b"msg"))
    True
    """
    if bits < 512:
        raise CryptoError("keys below 512 bits cannot sign SHA-256 digests")
    while True:
        p = _random_prime(bits // 2)
        q = _random_prime(bits - bits // 2)
        if p == q:
            continue
        n = p * q
        phi = (p - 1) * (q - 1)
        try:
            d = pow(e, -1, phi)
        except ValueError:
            continue  # e not invertible for this phi; rare, retry
        if n.bit_length() >= bits:
            return RsaPrivateKey(n=n, e=e, d=d, p=p, q=q)


def verify_or_raise(key: RsaPublicKey, message: bytes, signature: bytes) -> None:
    """Verification helper that raises :class:`IntegrityError` on failure."""
    if not key.verify(message, signature):
        raise IntegrityError("RSA signature verification failed")
