"""The AES block cipher (FIPS-197), pure Python.

Supports 128/192/256-bit keys.  The implementation is the classic
byte-oriented one: S-box substitution, ShiftRows, table-free MixColumns
over GF(2^8), and on-the-fly key expansion.  Verified against the
FIPS-197 appendix vectors in ``tests/crypto/test_aes.py``.

This is deliberately simple rather than fast — the benchmark harness
accounts encryption cost in virtual time (see ``repro.bench``), while
functional code paths use this cipher for real confidentiality.
"""

from __future__ import annotations

from repro.errors import CryptoError

BLOCK_SIZE = 16

# Forward S-box, generated from the AES specification.
_SBOX = [
    0x63, 0x7C, 0x77, 0x7B, 0xF2, 0x6B, 0x6F, 0xC5, 0x30, 0x01, 0x67, 0x2B,
    0xFE, 0xD7, 0xAB, 0x76, 0xCA, 0x82, 0xC9, 0x7D, 0xFA, 0x59, 0x47, 0xF0,
    0xAD, 0xD4, 0xA2, 0xAF, 0x9C, 0xA4, 0x72, 0xC0, 0xB7, 0xFD, 0x93, 0x26,
    0x36, 0x3F, 0xF7, 0xCC, 0x34, 0xA5, 0xE5, 0xF1, 0x71, 0xD8, 0x31, 0x15,
    0x04, 0xC7, 0x23, 0xC3, 0x18, 0x96, 0x05, 0x9A, 0x07, 0x12, 0x80, 0xE2,
    0xEB, 0x27, 0xB2, 0x75, 0x09, 0x83, 0x2C, 0x1A, 0x1B, 0x6E, 0x5A, 0xA0,
    0x52, 0x3B, 0xD6, 0xB3, 0x29, 0xE3, 0x2F, 0x84, 0x53, 0xD1, 0x00, 0xED,
    0x20, 0xFC, 0xB1, 0x5B, 0x6A, 0xCB, 0xBE, 0x39, 0x4A, 0x4C, 0x58, 0xCF,
    0xD0, 0xEF, 0xAA, 0xFB, 0x43, 0x4D, 0x33, 0x85, 0x45, 0xF9, 0x02, 0x7F,
    0x50, 0x3C, 0x9F, 0xA8, 0x51, 0xA3, 0x40, 0x8F, 0x92, 0x9D, 0x38, 0xF5,
    0xBC, 0xB6, 0xDA, 0x21, 0x10, 0xFF, 0xF3, 0xD2, 0xCD, 0x0C, 0x13, 0xEC,
    0x5F, 0x97, 0x44, 0x17, 0xC4, 0xA7, 0x7E, 0x3D, 0x64, 0x5D, 0x19, 0x73,
    0x60, 0x81, 0x4F, 0xDC, 0x22, 0x2A, 0x90, 0x88, 0x46, 0xEE, 0xB8, 0x14,
    0xDE, 0x5E, 0x0B, 0xDB, 0xE0, 0x32, 0x3A, 0x0A, 0x49, 0x06, 0x24, 0x5C,
    0xC2, 0xD3, 0xAC, 0x62, 0x91, 0x95, 0xE4, 0x79, 0xE7, 0xC8, 0x37, 0x6D,
    0x8D, 0xD5, 0x4E, 0xA9, 0x6C, 0x56, 0xF4, 0xEA, 0x65, 0x7A, 0xAE, 0x08,
    0xBA, 0x78, 0x25, 0x2E, 0x1C, 0xA6, 0xB4, 0xC6, 0xE8, 0xDD, 0x74, 0x1F,
    0x4B, 0xBD, 0x8B, 0x8A, 0x70, 0x3E, 0xB5, 0x66, 0x48, 0x03, 0xF6, 0x0E,
    0x61, 0x35, 0x57, 0xB9, 0x86, 0xC1, 0x1D, 0x9E, 0xE1, 0xF8, 0x98, 0x11,
    0x69, 0xD9, 0x8E, 0x94, 0x9B, 0x1E, 0x87, 0xE9, 0xCE, 0x55, 0x28, 0xDF,
    0x8C, 0xA1, 0x89, 0x0D, 0xBF, 0xE6, 0x42, 0x68, 0x41, 0x99, 0x2D, 0x0F,
    0xB0, 0x54, 0xBB, 0x16,
]

_INV_SBOX = [0] * 256
for _i, _v in enumerate(_SBOX):
    _INV_SBOX[_v] = _i

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36, 0x6C, 0xD8, 0xAB, 0x4D]

_ROUNDS = {16: 10, 24: 12, 32: 14}


def _xtime(a: int) -> int:
    """Multiply by x in GF(2^8) with the AES polynomial."""
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def _gmul(a: int, b: int) -> int:
    """Multiply two field elements in GF(2^8)."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


class AES:
    """AES block cipher with a fixed key.

    >>> cipher = AES(bytes(16))
    >>> block = cipher.encrypt_block(bytes(16))
    >>> cipher.decrypt_block(block) == bytes(16)
    True
    """

    def __init__(self, key: bytes):
        if len(key) not in _ROUNDS:
            raise CryptoError(f"AES key must be 16/24/32 bytes, got {len(key)}")
        self.key = key
        self.rounds = _ROUNDS[len(key)]
        self._round_keys = self._expand_key(key)

    # -- key schedule ---------------------------------------------------

    def _expand_key(self, key: bytes) -> list[list[int]]:
        nk = len(key) // 4
        words = [list(key[4 * i : 4 * i + 4]) for i in range(nk)]
        total_words = 4 * (self.rounds + 1)
        for i in range(nk, total_words):
            temp = list(words[i - 1])
            if i % nk == 0:
                temp = temp[1:] + temp[:1]  # RotWord
                temp = [_SBOX[b] for b in temp]  # SubWord
                temp[0] ^= _RCON[i // nk - 1]
            elif nk > 6 and i % nk == 4:
                temp = [_SBOX[b] for b in temp]
            words.append([a ^ b for a, b in zip(words[i - nk], temp)])
        # Group into 16-byte round keys, column-major state order.
        return [
            [byte for word in words[4 * r : 4 * r + 4] for byte in word]
            for r in range(self.rounds + 1)
        ]

    # -- round operations -------------------------------------------------

    @staticmethod
    def _add_round_key(state: list[int], round_key: list[int]) -> None:
        for i in range(16):
            state[i] ^= round_key[i]

    @staticmethod
    def _sub_bytes(state: list[int], box: list[int]) -> None:
        for i in range(16):
            state[i] = box[state[i]]

    @staticmethod
    def _shift_rows(state: list[int]) -> None:
        # State is column-major: state[4*c + r].
        for row in range(1, 4):
            vals = [state[4 * col + row] for col in range(4)]
            vals = vals[row:] + vals[:row]
            for col in range(4):
                state[4 * col + row] = vals[col]

    @staticmethod
    def _inv_shift_rows(state: list[int]) -> None:
        for row in range(1, 4):
            vals = [state[4 * col + row] for col in range(4)]
            vals = vals[-row:] + vals[:-row]
            for col in range(4):
                state[4 * col + row] = vals[col]

    @staticmethod
    def _mix_columns(state: list[int]) -> None:
        for col in range(4):
            a = state[4 * col : 4 * col + 4]
            state[4 * col + 0] = _gmul(a[0], 2) ^ _gmul(a[1], 3) ^ a[2] ^ a[3]
            state[4 * col + 1] = a[0] ^ _gmul(a[1], 2) ^ _gmul(a[2], 3) ^ a[3]
            state[4 * col + 2] = a[0] ^ a[1] ^ _gmul(a[2], 2) ^ _gmul(a[3], 3)
            state[4 * col + 3] = _gmul(a[0], 3) ^ a[1] ^ a[2] ^ _gmul(a[3], 2)

    @staticmethod
    def _inv_mix_columns(state: list[int]) -> None:
        for col in range(4):
            a = state[4 * col : 4 * col + 4]
            state[4 * col + 0] = (
                _gmul(a[0], 14) ^ _gmul(a[1], 11) ^ _gmul(a[2], 13) ^ _gmul(a[3], 9)
            )
            state[4 * col + 1] = (
                _gmul(a[0], 9) ^ _gmul(a[1], 14) ^ _gmul(a[2], 11) ^ _gmul(a[3], 13)
            )
            state[4 * col + 2] = (
                _gmul(a[0], 13) ^ _gmul(a[1], 9) ^ _gmul(a[2], 14) ^ _gmul(a[3], 11)
            )
            state[4 * col + 3] = (
                _gmul(a[0], 11) ^ _gmul(a[1], 13) ^ _gmul(a[2], 9) ^ _gmul(a[3], 14)
            )

    # -- public API -------------------------------------------------------

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise CryptoError(f"block must be 16 bytes, got {len(block)}")
        state = list(block)
        self._add_round_key(state, self._round_keys[0])
        for rnd in range(1, self.rounds):
            self._sub_bytes(state, _SBOX)
            self._shift_rows(state)
            self._mix_columns(state)
            self._add_round_key(state, self._round_keys[rnd])
        self._sub_bytes(state, _SBOX)
        self._shift_rows(state)
        self._add_round_key(state, self._round_keys[self.rounds])
        return bytes(state)

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise CryptoError(f"block must be 16 bytes, got {len(block)}")
        state = list(block)
        self._add_round_key(state, self._round_keys[self.rounds])
        for rnd in range(self.rounds - 1, 0, -1):
            self._inv_shift_rows(state)
            self._sub_bytes(state, _INV_SBOX)
            self._add_round_key(state, self._round_keys[rnd])
            self._inv_mix_columns(state)
        self._inv_shift_rows(state)
        self._sub_bytes(state, _INV_SBOX)
        self._add_round_key(state, self._round_keys[0])
        return bytes(state)
