"""Deterministic, seeded fault schedules for the chaos harness.

A :class:`DriveFaultSpec` declares *what* can go wrong with one drive;
a :class:`FaultSchedule` compiles it against a seed into a reproducible
timeline.  Two clocks are involved:

- **State windows** (crashes, transient offline spells) are expressed
  on the injector's *global* operation clock, so "kill drive 1 between
  ops 100 and 200 of the workload" means the same thing regardless of
  which drive serves each op.
- **Per-operation faults** (drops, corruption, slow I/O) are decided
  on the drive's *local* operation counter through a counter-based
  PRF over ``(seed, drive_id, local_op)``.  The decision for op N is a
  pure function of those three values — never of call order — which is
  what makes "same seed ⇒ identical fault timeline" hold even when
  retries or failover change how traffic interleaves across drives.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass


@dataclass(frozen=True)
class FaultDecision:
    """The faults injected into one drive operation."""

    drop: bool = False
    corrupt: bool = False
    slow_seconds: float = 0.0
    #: Serve this GET from a stale retained copy of the key (replay of
    #: an old replica state) — the rollback-protection adversary.
    replay: bool = False

    @property
    def clean(self) -> bool:
        return not (
            self.drop or self.corrupt or self.slow_seconds or self.replay
        )


#: Shared no-fault decision (the common case allocates nothing).
NO_FAULT = FaultDecision()


@dataclass(frozen=True)
class DriveFaultSpec:
    """Declarative fault plan for one drive.

    All probabilities are per-operation; window bounds are global op
    indexes with an exclusive end.  The default spec injects nothing,
    so wrapping a drive with it leaves behaviour untouched.
    """

    #: Global op index at which the drive crashes; None = never.
    crash_at: int | None = None
    #: Global op index at which a crashed drive comes back; None =
    #: stays down until someone calls ``recover()`` by hand.
    recover_at: int | None = None
    #: Extra transient offline spells: ``((start, end), ...)``.
    offline_windows: tuple = ()
    #: Drop every Nth operation on this drive (connection flake).
    drop_every: int | None = None
    #: Additional seeded per-op drop probability.
    drop_rate: float = 0.0
    #: Probability a GET finds its at-rest blob bit-flipped first.
    corrupt_rate: float = 0.0
    #: Probability an op is slow, and the virtual delay it then costs.
    slow_rate: float = 0.0
    slow_seconds: float = 0.01
    #: Rollback-protection adversary (see docs/freshness.md).  At
    #: ``capture_at`` (global op index) the drive's full state is
    #: snapshotted; at ``rollback_at`` the drive silently restores the
    #: snapshot in place — a rollback-to-old-version attack the drive
    #: still HMAC-signs perfectly.  ``fork_at`` is the same restore
    #: counted as a fork: tests pair it with a controller restart to
    #: model the cloud restoring an old fleet image.
    capture_at: int | None = None
    rollback_at: int | None = None
    fork_at: int | None = None
    #: Probability a GET is answered from a stale retained copy of its
    #: key (replay-of-stale-replica).  Drawn *after* the drop/corrupt/
    #: slow draws so existing same-seed timelines are unchanged.
    replay_rate: float = 0.0

    def windows(self) -> list[tuple[float, float]]:
        """All offline spells, crash included, as (start, end) spans."""
        spans = [tuple(window) for window in self.offline_windows]
        if self.crash_at is not None:
            end = float("inf") if self.recover_at is None else self.recover_at
            spans.append((self.crash_at, end))
        return spans


class FaultSchedule:
    """One drive's compiled fault timeline for a given seed."""

    def __init__(self, drive_id: str, spec: DriveFaultSpec, seed: int = 0):
        self.drive_id = drive_id
        self.spec = spec
        self.seed = seed
        self._windows = spec.windows()
        self._randomized = bool(
            spec.drop_rate or spec.corrupt_rate or spec.slow_rate
            or spec.replay_rate
        )

    def scheduled_online(self, global_op: int) -> bool:
        """Whether the schedule has this drive up at ``global_op``."""
        return not any(
            start <= global_op < end for start, end in self._windows
        )

    def _rng(self, local_op: int, salt: str = "") -> random.Random:
        digest = hashlib.sha256(
            f"{self.seed}:{self.drive_id}:{local_op}:{salt}".encode()
        ).digest()
        return random.Random(int.from_bytes(digest[:8], "big"))

    def decide(self, local_op: int) -> FaultDecision:
        """Fault decision for the drive's ``local_op``-th operation."""
        spec = self.spec
        drop = (
            spec.drop_every is not None
            and local_op % spec.drop_every == spec.drop_every - 1
        )
        corrupt = False
        slow = 0.0
        replay = False
        if self._randomized:
            rng = self._rng(local_op)
            drop = drop or rng.random() < spec.drop_rate
            corrupt = rng.random() < spec.corrupt_rate
            if rng.random() < spec.slow_rate:
                slow = spec.slow_seconds
            # Drawn last: earlier draws (and therefore every pre-replay
            # same-seed timeline) are unchanged by a replay_rate.
            replay = rng.random() < spec.replay_rate
        if not (drop or corrupt or slow or replay):
            return NO_FAULT
        return FaultDecision(
            drop=drop, corrupt=corrupt, slow_seconds=slow, replay=replay
        )

    def corruption_bit(self, local_op: int, nbytes: int) -> int:
        """Deterministic bit position to flip in an ``nbytes`` blob."""
        return self._rng(local_op, salt="bit").randrange(max(1, nbytes * 8))

    def timeline(self, ops: int) -> list[tuple]:
        """Materialize per-op fault events for the first ``ops`` ops.

        The determinism tests compare these lists across schedule
        instances built from the same seed.
        """
        events: list[tuple] = []
        for op in range(ops):
            decision = self.decide(op)
            if decision.drop:
                events.append((op, "drop"))
            if decision.corrupt:
                events.append((op, "corrupt"))
            if decision.slow_seconds:
                events.append((op, "slow", round(decision.slow_seconds, 9)))
            if decision.replay:
                events.append((op, "replay"))
        return events
