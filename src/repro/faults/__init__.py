"""Seeded fault injection for Kinetic drives (the chaos harness).

Wraps drives in :class:`~repro.faults.injector.FaultyDrive` proxies
driven by deterministic :class:`~repro.faults.schedule.FaultSchedule`
timelines — crashes, transient offline windows, dropped connections,
at-rest bit flips, and slow I/O — without touching the happy path.
See ``docs/resilience.md`` for the full model.
"""

from repro.faults.injector import FaultInjector, FaultStats, FaultyDrive
from repro.faults.schedule import (
    NO_FAULT,
    DriveFaultSpec,
    FaultDecision,
    FaultSchedule,
)

__all__ = [
    "DriveFaultSpec",
    "FaultDecision",
    "FaultInjector",
    "FaultSchedule",
    "FaultStats",
    "FaultyDrive",
    "NO_FAULT",
]
