"""Fault-injecting wrappers around Kinetic drives.

:class:`FaultyDrive` is a transparent proxy over one
:class:`~repro.kinetic.drive.KineticDrive`: every attribute the rest of
the system touches (``online``, ``certificate``, ``drive_id``,
``stats``, even test access to ``_entries``) delegates to the wrapped
drive, so the happy path is byte-for-byte the same code.  Only
``handle`` is intercepted, where the drive's
:class:`~repro.faults.schedule.FaultSchedule` gets to drop the request,
bit-flip the at-rest blob about to be read, or charge virtual latency.

:class:`FaultInjector` owns the shared global operation clock: every
operation through *any* wrapped drive ticks it, and window-based state
transitions (crashes, transient offline spells) are applied to the
whole fleet on each tick — a drive crashes on schedule even if it
serves no traffic itself.

Limitations (documented, not accidental): PEER2PEERPUSH between drives
bypasses injection because peers were registered on the raw drives,
and manual ``fail()``/``recover()`` calls are respected until the next
scheduled window boundary overrides them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DriveOffline, TransientIOError
from repro.faults.schedule import DriveFaultSpec, FaultSchedule
from repro.kinetic.drive import _Entry
from repro.kinetic.protocol import Message, MessageType


def _stale_entry(value: bytes, version: bytes) -> _Entry:
    """A fresh at-rest entry holding replayed (stale) drive state."""
    return _Entry(value=value, version=version)


@dataclass
class FaultStats:
    """What the injector actually did, for assertions and reports."""

    ops: int = 0
    drops: int = 0
    corruptions: int = 0
    slow_ops: int = 0
    slow_seconds: float = 0.0
    transitions: int = 0
    rollbacks: int = 0
    forks: int = 0
    replays: int = 0

    def as_tuple(self) -> tuple:
        return (
            self.ops,
            self.drops,
            self.corruptions,
            self.slow_ops,
            round(self.slow_seconds, 9),
            self.transitions,
            self.rollbacks,
            self.forks,
            self.replays,
        )


class FaultyDrive:
    """One drive behind a fault schedule; see the module docstring."""

    def __init__(
        self, inner, schedule: FaultSchedule, injector: "FaultInjector"
    ):
        self._inner = inner
        self._schedule = schedule
        self._injector = injector
        self._local_op = 0
        self._scheduled_online = True
        #: Rollback/fork machinery: one full-state snapshot plus
        #: one-shot flags for the spec's capture/rollback/fork marks.
        self._snapshot = None
        self._captured = False
        self._rolled_back = False
        self._forked = False
        #: Previous values of overwritten keys, oldest first (capped),
        #: for replay-of-stale-replica faults.
        self._retained: dict = {}

    @property
    def schedule(self) -> FaultSchedule:
        return self._schedule

    @property
    def local_op(self) -> int:
        return self._local_op

    def handle(self, request: Message) -> Message:
        injector = self._injector
        injector.tick()
        if not self._inner.online:
            raise DriveOffline(f"drive {self._inner.drive_id} is offline")
        local_op = self._local_op
        self._local_op += 1
        if request.message_type == MessageType.PUT:
            self._retain(request.body.get("key"))
        decision = self._schedule.decide(local_op)
        if decision.clean:
            return self._inner.handle(request)
        if decision.corrupt and request.message_type == MessageType.GET:
            self._flip_bit(request.body.get("key"), local_op)
        if decision.drop:
            injector.stats.drops += 1
            raise TransientIOError(
                f"injected connection drop on {self._inner.drive_id} "
                f"(local op {local_op})"
            )
        if decision.replay and request.message_type == MessageType.GET:
            response = self._serve_replayed(request)
        else:
            response = self._inner.handle(request)
        if decision.slow_seconds:
            injector.stats.slow_ops += 1
            injector.stats.slow_seconds += decision.slow_seconds
        return response

    # -- rollback / fork / replay machinery ------------------------------

    #: Stale copies retained per overwritten key (the adversary's
    #: replay buffer does not need to be deep to be dangerous).
    RETAIN_DEPTH = 4

    def _retain(self, key) -> None:
        """Keep the pre-PUT value of ``key`` for later replay faults."""
        if key is None:
            return
        entry = self._inner._entries.get(key)
        if entry is None:
            return
        history = self._retained.setdefault(key, [])
        history.append((entry.value, entry.version))
        del history[: -self.RETAIN_DEPTH]

    def _serve_replayed(self, request: Message) -> Message:
        """Answer a GET from the oldest retained copy of the key.

        The stale entry is swapped in only for the duration of the
        inner call, so the drive HMAC-signs a perfectly-formed response
        carrying data the controller overwrote long ago — precisely
        what version numbers cannot detect and Merkle proofs can.
        """
        key = request.body.get("key")
        history = self._retained.get(key) if key is not None else None
        if not history:
            return self._inner.handle(request)
        entries = self._inner._entries
        current = entries.get(key)
        stale_value, stale_version = history[0]
        entries[key] = _stale_entry(stale_value, stale_version)
        try:
            response = self._inner.handle(request)
        finally:
            if current is not None:
                entries[key] = current
            else:
                del entries[key]
        self._injector.stats.replays += 1
        return response

    def capture_snapshot(self) -> None:
        """Snapshot the drive's full state for a later restore."""
        inner = self._inner
        self._snapshot = (
            {
                key: (entry.value, entry.version)
                for key, entry in inner._entries.items()
            },
            list(inner._sorted_keys),
            inner._used_bytes,
        )
        self._captured = True

    def restore_snapshot(self, kind: str = "rollback") -> bool:
        """Silently reset the drive to the captured snapshot.

        ``kind`` is ``rollback`` (in-place rollback attack) or
        ``fork`` (old fleet image restored across a controller
        restart); it only affects which stat the restore counts
        toward.  Returns False when nothing was ever captured.
        """
        if self._snapshot is None:
            return False
        entries, sorted_keys, used_bytes = self._snapshot
        inner = self._inner
        inner._entries = {
            key: _stale_entry(value, version)
            for key, (value, version) in entries.items()
        }
        inner._sorted_keys = list(sorted_keys)
        inner._used_bytes = used_bytes
        if kind == "fork":
            self._injector.stats.forks += 1
        else:
            self._injector.stats.rollbacks += 1
        return True

    def _flip_bit(self, key, local_op: int) -> None:
        """Bit-flip the at-rest value so the drive serves it corrupt.

        The drive still HMAC-signs the (corrupt) response, exactly like
        real silent media corruption: only the controller's AEAD open
        can notice.
        """
        entry = self._inner._entries.get(key) if key else None
        if entry is None or not entry.value:
            return
        bit = self._schedule.corruption_bit(local_op, len(entry.value))
        blob = bytearray(entry.value)
        blob[bit // 8] ^= 1 << (bit % 8)
        entry.value = bytes(blob)
        self._injector.stats.corruptions += 1

    def _apply_schedule(self, global_op: int) -> None:
        spec = self._schedule.spec
        if (
            spec.capture_at is not None
            and global_op >= spec.capture_at
            and not self._captured
        ):
            self.capture_snapshot()
        if (
            spec.rollback_at is not None
            and global_op >= spec.rollback_at
            and not self._rolled_back
        ):
            self._rolled_back = True
            self.restore_snapshot("rollback")
        if (
            spec.fork_at is not None
            and global_op >= spec.fork_at
            and not self._forked
        ):
            self._forked = True
            self.restore_snapshot("fork")
        wanted = self._schedule.scheduled_online(global_op)
        if wanted == self._scheduled_online:
            return
        self._scheduled_online = wanted
        self._injector.stats.transitions += 1
        if wanted:
            self._inner.recover()
        else:
            self._inner.fail()

    def __getattr__(self, name):
        return getattr(object.__getattribute__(self, "_inner"), name)


@dataclass
class FaultInjector:
    """Owns the global fault clock and the wrapped drive fleet."""

    seed: int = 0
    stats: FaultStats = field(default_factory=FaultStats)
    global_op: int = 0

    def __post_init__(self):
        self._drives: list[FaultyDrive] = []

    @property
    def drives(self) -> list[FaultyDrive]:
        return list(self._drives)

    def wrap(self, drive, spec: DriveFaultSpec | None = None) -> FaultyDrive:
        """Wrap one drive; a ``None`` spec injects nothing."""
        schedule = FaultSchedule(
            drive.drive_id, spec or DriveFaultSpec(), self.seed
        )
        wrapped = FaultyDrive(drive, schedule, self)
        self._drives.append(wrapped)
        wrapped._apply_schedule(self.global_op)
        return wrapped

    def wrap_cluster(self, cluster, specs=None) -> list[FaultyDrive]:
        """Replace every drive in a DriveCluster with a wrapped one.

        ``specs`` is either one :class:`DriveFaultSpec` applied to all
        drives, or a mapping of drive index to spec (unlisted drives
        get the no-op spec).  Call this *before* ``connect_all`` so the
        clients talk to the wrappers.
        """
        wrapped = []
        for index, drive in enumerate(cluster.drives):
            if isinstance(specs, dict):
                spec = specs.get(index)
            else:
                spec = specs
            wrapped.append(self.wrap(drive, spec))
        cluster.drives = wrapped
        return wrapped

    def reschedule(self, drive, spec: DriveFaultSpec) -> FaultSchedule:
        """Swap one wrapped drive's fault plan mid-scenario.

        Phase-based chaos tests use this to express windows relative
        to the current global op ("crash 100 ops into the measured
        run") without predicting how many ops the setup phase costs.
        ``drive`` is a wrapped drive or its index in wrap order.
        """
        wrapped = self._drives[drive] if isinstance(drive, int) else drive
        schedule = FaultSchedule(wrapped._inner.drive_id, spec, self.seed)
        wrapped._schedule = schedule
        # A new plan re-arms the one-shot rollback/fork marks (the old
        # snapshot is kept: phase-based tests capture in one phase and
        # restore in the next).
        wrapped._rolled_back = False
        wrapped._forked = False
        if spec.capture_at is None or spec.capture_at > self.global_op:
            wrapped._captured = False
        wrapped._apply_schedule(self.global_op)
        return schedule

    def tick(self) -> int:
        """Advance the global clock and apply window transitions."""
        self.global_op += 1
        self.stats.ops += 1
        for drive in self._drives:
            drive._apply_schedule(self.global_op)
        return self.global_op
