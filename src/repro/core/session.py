"""Per-client session contexts (§3.1, §4.1).

A session is created when a client first connects, keyed by the
certificate fingerprint from its TLS session.  It stores the client
soft-state: async operation results, the freshness nonce Pesos hands
out for time certificates, and transaction handles.  Sessions persist
past disconnect and expire after a configurable idle period; a
reconnecting client gets its old session back while it lives.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass, field

from repro.errors import SessionError

#: Paper default: each connected client's session object is ~30 KB.
SESSION_SOFT_BYTES = 30 * 1024


@dataclass
class Session:
    """Soft-state for one authenticated client."""

    fingerprint: str
    created_at: float
    last_active: float
    nonce: str = field(default_factory=lambda: secrets.token_hex(16))
    #: Async operation ids issued to this client, newest last.
    operations: list = field(default_factory=list)
    #: Open transaction ids.
    transactions: set = field(default_factory=set)
    requests_handled: int = 0
    #: Admission-control token bucket
    #: (:class:`repro.core.admission.TokenBucket`), created lazily by
    #: the :class:`~repro.core.admission.AdmissionController` on the
    #: session's first rate-checked request.  Living on the session
    #: means the rate state is keyed by TLS fingerprint and expires
    #: exactly when the session does.
    bucket: object | None = None

    def touch(self, now: float) -> None:
        self.last_active = now
        self.requests_handled += 1

    def refresh_nonce(self) -> str:
        self.nonce = secrets.token_hex(16)
        return self.nonce

    def footprint(self) -> int:
        """Deterministic per-session byte accounting.

        Structural, not ``sys.getsizeof``: a fixed base covers the
        dataclass slots (fingerprint hash, clocks, nonce, counters),
        plus the variable-size collections — async operation ids,
        open transaction handles, and the lazily created token bucket.
        The churn soak asserts this stays bounded across millions of
        lifecycles, so the formula must be stable across interpreter
        versions and GC states.
        """
        base = 256  # slots: fingerprint, clocks, nonce, counters
        base += len(self.fingerprint)
        base += sum(len(op) + 48 for op in self.operations)
        base += sum(len(tx) + 48 for tx in self.transactions)
        if self.bucket is not None:
            base += 96  # TokenBucket: rate, burst, level, stamp
        return base


class SessionManager:
    """Creates, resumes, and expires sessions."""

    def __init__(self, expiry_seconds: float = 3600.0, max_sessions: int = 10_000):
        self.expiry_seconds = expiry_seconds
        self.max_sessions = max_sessions
        self._sessions: dict[str, Session] = {}
        self.created = 0
        self.resumed = 0
        self.expired = 0

    def __len__(self) -> int:
        return len(self._sessions)

    def connect(self, fingerprint: str, *, now: float) -> Session:
        """Create or resume the session for an authenticated client.

        ``now`` is required on purpose: a defaulted clock silently
        pinned forgetful callers to time zero, which made every later
        idle-eviction pass expire fresh sessions (or none, depending
        on call order).  Callers must thread the virtual clock.
        """
        if not fingerprint:
            raise SessionError("client presented no certificate fingerprint")
        session = self._sessions.get(fingerprint)
        if session is not None:
            if now - session.last_active <= self.expiry_seconds:
                session.last_active = now
                self.resumed += 1
                return session
            # Expired: drop the old context and start fresh.
            del self._sessions[fingerprint]
            self.expired += 1
        if len(self._sessions) >= self.max_sessions:
            self._evict_idle(now)
        session = Session(
            fingerprint=fingerprint, created_at=now, last_active=now
        )
        self._sessions[fingerprint] = session
        self.created += 1
        return session

    def peek(self, fingerprint: str, *, now: float) -> Session | None:
        """A live session, or None — with zero side effects.

        Unlike :meth:`lookup` this neither expires nor touches state,
        so speculative paths (policy-decision prewarming) can consult
        sessions without perturbing eviction or the counters.
        """
        session = self._sessions.get(fingerprint)
        if session is None or now - session.last_active > self.expiry_seconds:
            return None
        return session

    def lookup(self, fingerprint: str, *, now: float) -> Session:
        """Fetch an existing live session or raise."""
        session = self._sessions.get(fingerprint)
        if session is None:
            raise SessionError(f"no session for {fingerprint[:12]}...")
        if now - session.last_active > self.expiry_seconds:
            del self._sessions[fingerprint]
            self.expired += 1
            raise SessionError("session expired")
        return session

    def expire_idle(self, now: float) -> int:
        """Sweep expired sessions; returns how many were dropped."""
        victims = [
            fp
            for fp, session in self._sessions.items()
            if now - session.last_active > self.expiry_seconds
        ]
        for fp in victims:
            del self._sessions[fp]
        self.expired += len(victims)
        return len(victims)

    def memory_in_use(self) -> int:
        return len(self._sessions) * SESSION_SOFT_BYTES

    def footprint_bytes(self) -> int:
        """Sum of structural per-session footprints (see
        :meth:`Session.footprint`); the soak harness divides this by
        the live-session count to bound bytes per user."""
        return sum(s.footprint() for s in self._sessions.values())

    def live_sessions(self) -> int:
        return len(self._sessions)

    def _evict_idle(self, now: float) -> None:
        if not self._sessions:
            return
        oldest = min(self._sessions.values(), key=lambda s: s.last_active)
        del self._sessions[oldest.fingerprint]
        self.expired += 1
