"""ACID multi-object transactions via a VLL variant (§4.4).

Pesos adapts the VLL lock manager (Ren et al.): a committing
transaction tries to take all of its locks at once.  If every lock was
free it executes immediately; otherwise it joins the transaction
queue, and VLL's ordering guarantees that by the time a blocked
transaction reaches the *front* of the queue, every lock it needs is
held only by itself — so the front can always run.

Unlike the original in-memory-database implementation, the lock table
here is a small dict keyed by object keys, since only a fraction of
keys are expected to see transactional access.

Since the concurrent request engine (:mod:`repro.core.engine`) lets
commits overlap drive I/O, the manager is now overlap-aware:

- Keys held by *currently executing* transactions are tracked
  separately (``_running``), and :meth:`VllManager._drain_queue` only
  runs the queue front when its locks are *truly exclusive* — held by
  nobody but the front itself and transactions queued behind it (the
  actual VLL invariant; the sequential code could assume any drain
  point implied exclusivity).
- Non-transactional requests take per-key locks in a
  :class:`repro.core.locks.KeyLockTable` wired in via
  ``request_locks``; commits treat those holds as conflicts, and
  request-lock releases drain the queue.
- Aborting a QUEUED transaction drains the queue after unlocking —
  previously the released keys could leave a runnable front stalled
  until an unrelated commit happened to drain.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.analysis.sanitizer import NULL_SANITIZER
from repro.errors import TransactionError
from repro.telemetry import NULL_TELEMETRY
from repro.telemetry.metrics import MetricFamily, Sample

OPEN = "open"
QUEUED = "queued"
COMMITTED = "committed"
ABORTED = "aborted"


@dataclass
class Transaction:
    """One client transaction being assembled and committed."""

    txid: str
    fingerprint: str
    state: str = OPEN
    reads: list = field(default_factory=list)
    writes: dict = field(default_factory=dict)  # key -> (value, policy_id)
    results: dict = field(default_factory=dict)
    error: str = ""
    #: Execution context captured at commit time.  A queued transaction
    #: may execute later, on whichever request thread drains the queue,
    #: so the context must ride on the transaction itself (the old
    #: controller-global ``_tx_session_now`` tuple was clobbered as
    #: soon as two commits overlapped).
    session: object = None
    now: float = 0.0

    def keys(self) -> list:
        ordered = list(dict.fromkeys(self.reads))
        for key in self.writes:
            if key not in ordered:
                ordered.append(key)
        return ordered

    def _require_open(self) -> None:
        if self.state != OPEN:
            raise TransactionError(
                f"transaction {self.txid} is {self.state}, not open"
            )

    def add_read(self, key: str) -> None:
        self._require_open()
        self.reads.append(key)

    def add_write(self, key: str, value: bytes, policy_id: str = "") -> None:
        self._require_open()
        self.writes[key] = (value, policy_id)


class VllManager:
    """Lock table + transaction queue (exclusive locks only)."""

    def __init__(
        self,
        executor: Callable[[Transaction], dict],
        telemetry=None,
        request_locks=None,
    ):
        self._executor = executor
        self._locks: dict[str, int] = {}
        #: Keys held by transactions whose executor is running right
        #: now (commits overlap under the concurrent engine).
        self._running: dict[str, int] = {}
        #: Optional :class:`repro.core.locks.KeyLockTable` holding the
        #: non-transactional per-key request locks; holds there block
        #: commits, and the table's release hook drains our queue.
        self.request_locks = request_locks
        self._queue: deque[Transaction] = deque()
        self._transactions: dict[str, Transaction] = {}
        self._ids = itertools.count(1)
        self.executed_immediately = 0
        self.executed_from_queue = 0
        self.aborted = 0
        self.telemetry = telemetry or NULL_TELEMETRY
        #: Concurrency-sanitizer hooks; the shared no-op by default.
        self.sanitizer = NULL_SANITIZER
        self._m_outcomes = self.telemetry.counter(
            "pesos_txn_total",
            "Transactions finished, by outcome.",
            ("outcome",),
        )
        self._m_queued = self.telemetry.counter(
            "pesos_txn_queued_total",
            "Commits that blocked on locks and executed from the queue.",
        )
        if self.telemetry.enabled:
            self.telemetry.register_callback(self._derived_metrics)

    # -- lifecycle -----------------------------------------------------------

    def create(self, fingerprint: str) -> Transaction:
        txid = f"tx-{next(self._ids):06d}"
        tx = Transaction(txid=txid, fingerprint=fingerprint)
        self._transactions[txid] = tx
        return tx

    def get(self, txid: str, fingerprint: str) -> Transaction:
        tx = self._transactions.get(txid)
        if tx is None or tx.fingerprint != fingerprint:
            raise TransactionError(f"no transaction {txid!r}")
        return tx

    def abort(self, tx: Transaction) -> None:
        if tx.state == QUEUED:
            self._queue.remove(tx)
            self._unlock(tx)
            tx.state = ABORTED
            # The keys just released may be all the queue front was
            # waiting for; without this drain the followers stall
            # until some unrelated commit happens to drain for them.
            self._drain_queue()
        elif tx.state == OPEN:
            tx.state = ABORTED
        else:
            raise TransactionError(f"cannot abort {tx.state} transaction")
        self.aborted += 1
        self._m_outcomes.labels("client_abort").inc()

    # -- VLL commit path --------------------------------------------------------

    def commit(self, tx: Transaction) -> Transaction:
        """Try to run ``tx``; it either executes now or queues."""
        tx._require_open()
        keys = tx.keys()
        blocked = any(
            self._locks.get(key, 0) > 0 or self._request_locked(key)
            for key in keys
        )
        for key in keys:
            self._locks[key] = self._locks.get(key, 0) + 1
        if blocked:
            tx.state = QUEUED
            self._queue.append(tx)
        else:
            self._run(tx)
            self.executed_immediately += 1
            self._drain_queue()
        return tx

    def _request_locked(self, key: str) -> bool:
        return self.request_locks is not None and self.request_locks.locked(
            key
        )

    def _run(self, tx: Transaction) -> None:
        # The VLL grab in commit() is all-at-once (no hold-and-wait),
        # and a queued transaction runs on whichever thread drains the
        # queue — so the group is attributed here, to the thread that
        # actually executes under the locks.  Lock id ("obj", key) is
        # shared with KeyLockTable: the cross-wired conflict checks
        # make the two tables one logical lock per key.
        group = [("obj", key) for key in tx.keys()]
        self.sanitizer.on_group_acquire(group)
        for key in tx.keys():
            self._running[key] = self._running.get(key, 0) + 1
        with self.telemetry.span(
            "txn.execute", txid=tx.txid, keys=len(tx.keys())
        ):
            try:
                tx.results = self._executor(tx)
                tx.state = COMMITTED
                self._m_outcomes.labels("committed").inc()
            except TransactionError as exc:
                tx.state = ABORTED
                tx.error = str(exc)
                self.aborted += 1
                self._m_outcomes.labels("aborted").inc()
            finally:
                for key in tx.keys():
                    remaining = self._running.get(key, 0) - 1
                    if remaining <= 0:
                        self._running.pop(key, None)
                    else:
                        self._running[key] = remaining
                self._unlock(tx)
                self.sanitizer.on_group_release(group)

    def _unlock(self, tx: Transaction) -> None:
        for key in tx.keys():
            remaining = self._locks.get(key, 0) - 1
            if remaining <= 0:
                self._locks.pop(key, None)
            else:
                self._locks[key] = remaining

    def _front_exclusive(self, front: Transaction) -> bool:
        """VLL invariant check: may the queue front execute *now*?

        All other ``_locks`` holders of the front's keys are queued
        behind it (queue order mirrors acquisition order), so those
        never block it.  What does block it, once execution overlaps
        drive I/O: a transaction still *running* on one of its keys,
        or a non-transactional request holding the per-key lock.
        """
        return all(
            self._running.get(key, 0) == 0
            and not self._request_locked(key)
            for key in front.keys()
        )

    def _drain_queue(self) -> None:
        # Run queued transactions front-first while the front's locks
        # are truly exclusive; execution may in turn unblock the next
        # front, so keep draining.  A front still blocked by a running
        # transaction (or a request lock) stays queued — whoever
        # releases that hold drains again.
        while self._queue and self._front_exclusive(self._queue[0]):
            front = self._queue.popleft()
            front.state = OPEN
            self._run(front)
            self.executed_from_queue += 1
            self._m_queued.inc()

    def notify_release(self, key: str) -> None:
        """Request-lock release hook: a waiter may now be runnable."""
        if self._queue:
            self._drain_queue()

    # -- introspection ------------------------------------------------------------

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def holds(self, key: str) -> bool:
        """Whether any transaction (queued or running) locks ``key``."""
        return self._locks.get(key, 0) > 0

    def locked_keys(self) -> set:
        return set(self._locks)

    def _derived_metrics(self):
        yield MetricFamily(
            name="pesos_txn_queue_depth",
            kind="gauge",
            help="Transactions waiting in the VLL queue.",
            samples=[
                Sample("pesos_txn_queue_depth", {}, len(self._queue))
            ],
        )
        yield MetricFamily(
            name="pesos_txn_locked_keys",
            kind="gauge",
            help="Object keys currently holding VLL locks.",
            samples=[
                Sample("pesos_txn_locked_keys", {}, len(self._locks))
            ],
        )
