"""Consistent-hash placement for dynamic drive membership.

§3.1: "While the current prototype uses a static configuration,
support for dynamically adding and removing disks to a controller
instance can be added in the future (e.g., using consistent
hashing)."  This module adds it: a classic consistent-hash ring with
virtual nodes, plus the migration planner that computes which objects
must move when membership changes — the property that makes
consistent hashing worthwhile is that only ~K/N of keys move.

:class:`ElasticStore` wires the ring into an
:class:`~repro.core.store.ObjectStore` and performs the actual data
movement through the ordinary (encrypted, replicated) read/write
paths, so migrated objects remain protected end to end.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass, field

from repro.errors import ConfigurationError


def _hash_point(label: str) -> int:
    return int.from_bytes(
        hashlib.sha256(label.encode()).digest()[:8], "big"
    )


class HashRing:
    """Consistent-hash ring over drive names with virtual nodes."""

    def __init__(self, drives: list[str] | None = None, vnodes: int = 64):
        if vnodes < 1:
            raise ConfigurationError("need at least one virtual node")
        self.vnodes = vnodes
        self._points: list[int] = []
        self._owners: dict[int, str] = {}
        self._drives: set[str] = set()
        for drive in drives or []:
            self.add_drive(drive)

    def __len__(self) -> int:
        return len(self._drives)

    @property
    def drives(self) -> set:
        return set(self._drives)

    def add_drive(self, drive: str) -> None:
        if drive in self._drives:
            raise ConfigurationError(f"drive {drive!r} already on the ring")
        self._drives.add(drive)
        for vnode in range(self.vnodes):
            point = _hash_point(f"{drive}#{vnode}")
            if point in self._owners:  # vanishingly rare 64-bit collision
                continue
            bisect.insort(self._points, point)
            self._owners[point] = drive

    def remove_drive(self, drive: str) -> None:
        if drive not in self._drives:
            raise ConfigurationError(f"drive {drive!r} not on the ring")
        self._drives.remove(drive)
        for vnode in range(self.vnodes):
            point = _hash_point(f"{drive}#{vnode}")
            if self._owners.get(point) != drive:
                continue
            index = bisect.bisect_left(self._points, point)
            del self._points[index]
            del self._owners[point]

    def placement(self, key: str, replicas: int = 1) -> list[str]:
        """The first ``replicas`` distinct drives clockwise from the key."""
        if not self._drives:
            raise ConfigurationError("ring is empty")
        count = min(replicas, len(self._drives))
        start = bisect.bisect_right(self._points, _hash_point(key))
        owners: list[str] = []
        for offset in range(len(self._points)):
            point = self._points[(start + offset) % len(self._points)]
            owner = self._owners[point]
            if owner not in owners:
                owners.append(owner)
                if len(owners) == count:
                    break
        return owners


@dataclass
class MigrationPlan:
    """Objects whose placement changes with a membership change."""

    moves: list = field(default_factory=list)  # (key, old_drives, new_drives)

    def __len__(self) -> int:
        return len(self.moves)


class ElasticStore:
    """Dynamic membership on top of an ObjectStore.

    The wrapped store's drive clients are indexed by position;
    the ring works with drive ids and this class maps between them.
    """

    def __init__(self, store, drive_ids: list[str], vnodes: int = 64):
        if len(drive_ids) != len(store.clients):
            raise ConfigurationError("one drive id per store client")
        self.store = store
        self._ids = list(drive_ids)
        self.ring = HashRing(drive_ids, vnodes=vnodes)
        # Swap the store's placement to ring-based.
        store._replicas = self._replicas  # type: ignore[method-assign]
        #: Keys this store has written (the migration work-list; a
        #: production system would scan the drives' keyspaces).
        self.known_keys: set = set()

    def _index_of(self, drive_id: str) -> int:
        return self._ids.index(drive_id)

    def _replicas(self, key: str) -> list[int]:
        return [
            self._index_of(drive_id)
            for drive_id in self.ring.placement(
                key, self.store.replication_factor
            )
        ]

    # -- tracked writes -----------------------------------------------------

    def store_version(self, meta, value: bytes, policy_hash: str = ""):
        self.known_keys.add(meta.key)
        return self.store.store_version(meta, value, policy_hash)

    def read_value(self, key: str, version: int) -> bytes:
        return self.store.read_value(key, version)

    def read_meta(self, key: str):
        return self.store.read_meta(key)

    # -- membership changes --------------------------------------------------

    def plan(self, change, drive_id: str) -> MigrationPlan:
        """Placement diff for adding/removing ``drive_id``."""
        before = {
            key: self.ring.placement(key, self.store.replication_factor)
            for key in self.known_keys
        }
        change(drive_id)  # mutate the ring
        plan = MigrationPlan()
        for key, old in before.items():
            new = self.ring.placement(key, self.store.replication_factor)
            if new != old:
                plan.moves.append((key, old, new))
        return plan

    def add_drive(self, drive_id: str, client) -> MigrationPlan:
        """Join a drive and migrate the objects that now map to it."""
        self.store.clients.append(client)
        self._ids.append(drive_id)
        plan = self.plan(self.ring.add_drive, drive_id)
        self._migrate(plan)
        return plan

    def remove_drive(self, drive_id: str) -> MigrationPlan:
        """Drain a drive: move its objects, then drop it from the ring."""
        if drive_id not in self.ring.drives:
            raise ConfigurationError(f"unknown drive {drive_id!r}")
        plan = self.plan(self.ring.remove_drive, drive_id)
        self._migrate(plan, draining=self._index_of(drive_id))
        index = self._index_of(drive_id)
        del self.store.clients[index]
        del self._ids[index]
        return plan

    def _migrate(self, plan: MigrationPlan, draining: int | None = None):
        """Re-write each moved object under its new placement.

        Reads go through the old replicas (still intact), writes
        through the new ring placement; stale copies on drives no
        longer responsible are deleted.
        """
        for key, old, new in plan.moves:
            meta = self._read_meta_from(key, old, draining)
            if meta is None:
                continue
            for version in meta.versions:
                slot = self.store._slot(version)
                value = self._read_value_from(key, slot, old, draining)
                blob_aad = (
                    b"val:" + key.encode() + b":" + str(slot).encode()
                )
                sealed = self.store._seal(value, blob_aad)
                self.store._write_replicas(
                    key, self.store.value_key(key, slot), sealed
                )
            self.store.write_meta(meta)
            # Remove copies from drives that no longer own the key.
            new_indices = set(self._replicas(key))
            for drive_id in old:
                index = self._index_of(drive_id)
                if index in new_indices:
                    continue
                client = self.store.clients[index]
                for version in meta.versions:
                    slot = self.store._slot(version)
                    self._quiet_delete(
                        client, self.store.value_key(key, slot)
                    )
                self._quiet_delete(client, self.store.meta_key(key))

    def _read_meta_from(self, key, old_drive_ids, draining):
        from repro.core.store import StoredMeta

        blob = self._read_blob_from(
            key, self.store.meta_key(key), old_drive_ids, draining
        )
        if blob is None:
            return None
        return StoredMeta.decode(
            self.store._open(blob, b"meta:" + key.encode())
        )

    def _read_value_from(self, key, slot, old_drive_ids, draining):
        blob = self._read_blob_from(
            key, self.store.value_key(key, slot), old_drive_ids, draining
        )
        aad = b"val:" + key.encode() + b":" + str(slot).encode()
        return self.store._open(blob, aad)

    def _read_blob_from(self, key, disk_key, old_drive_ids, draining):
        from repro.errors import DriveOffline, KineticNotFound

        for drive_id in old_drive_ids:
            index = self._index_of(drive_id)
            try:
                # Migration-source read: raw on purpose — the old
                # placement's copy feeds a re-write that re-enters the
                # verified path, and the pinned leaf digest protects
                # every subsequent read wherever the key lands.
                blob, _version = self.store.clients[index].get(disk_key)  # pesos: allow[core-unverified-meta-read]
                return blob
            except (KineticNotFound, DriveOffline):
                continue
        return None

    @staticmethod
    def _quiet_delete(client, disk_key) -> None:
        from repro.errors import DriveOffline, KineticNotFound

        try:
            client.delete(disk_key, force=True)
        except (KineticNotFound, DriveOffline):
            pass
