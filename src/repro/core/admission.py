"""Admission control and overload protection.

The controller serves many concurrent clients from inside a
memory-constrained enclave (§4.1 async request interface, §4.2 bounded
caches), but admitting work without limit means a traffic spike queues
every request: virtual-time p99 explodes and the async result buffer
evicts still-pending operations (``AsyncTracker.discarded_pending``
witnesses exactly this).  TEE stores collapse, rather than degrade,
once the trusted core saturates — so graceful shedding has to live in
the enforcement layer itself, between the web server and the
concurrent engine.

Three cooperating mechanisms, composed by
:class:`AdmissionController`:

- :class:`AdmissionQueue` — a bounded, priority-aware queue.  When it
  fills, the lowest-priority newest entry is shed (writes outrank
  reads: an admitted write carries a durability promise, a shed read
  is merely a retry).  Entries also carry a per-class queue-time
  deadline; anything that waited too long is shed at dispatch instead
  of serving a response nobody is waiting for anymore.
- :class:`TokenBucket` — per-session rate limits keyed by the TLS
  certificate fingerprint.  Buckets live *on* the
  :class:`~repro.core.session.Session` object (wired through
  :class:`~repro.core.session.SessionManager`), so rate state expires
  exactly when the session does and costs nothing extra to bound.
- :class:`AdaptiveLimiter` — an AIMD concurrency limiter driven by a
  virtual-time latency signal.  It governs how many green threads
  :meth:`repro.core.engine.ConcurrentEngine._admit` dispatches per
  scheduling round: additive increase while latency meets the target,
  multiplicative decrease when a round overruns it.

Shed requests answer ``429`` (rate-limited: the client itself is the
overload) or ``503`` (queue shed: the *system* is the overload), both
with a ``Retry-After`` hint — the same response plumbing
:class:`~repro.errors.ReplicationDegraded` uses.  The hint carries
seeded PRF jitter (a pure function of ``(seed, decision index)``, like
the fault schedules) so a thundering herd decorrelates without
breaking byte-replayability.  Every decision lands in
:attr:`AdmissionController.decision_log`, which the engine folds into
``trace_bytes()`` — two same-seed runs shed the same requests at the
same points, byte for byte.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass, field

from repro.core.request import Request, Response
from repro.errors import OverloadShed, RateLimited
from repro.telemetry import NULL_TELEMETRY

#: Priority class per request method; higher is admitted first and
#: shed last.  Writes and transaction control outrank reads; ``status``
#: polls rank lowest (the result is buffered, polling again is free).
DEFAULT_PRIORITIES: dict[str, int] = {
    "put": 2,
    "delete": 2,
    "put_policy": 2,
    "commit_tx": 2,
    "abort_tx": 2,
    "add_write": 2,
    "add_read": 2,
    "create_tx": 1,
    "get": 1,
    "scan": 1,
    "rmw": 2,
    "attest": 1,
    "get_policy": 1,
    "tx_results": 1,
    "status": 0,
}

#: Shed reasons (the ``outcome`` metric label, bounded by design).
SHED_RATE = "rate_limited"
SHED_QUEUE_FULL = "queue_full"
SHED_QUEUE_DELAY = "queue_delay"
SHED_DEADLINE = "deadline"
ADMITTED = "admitted"


@dataclass
class AdmissionConfig:
    """Tuning knobs for one admission controller."""

    #: Maximum queued (admitted but not yet dispatched) requests.
    queue_depth: int = 64
    #: Virtual seconds a request may wait in the queue before it is
    #: shed at dispatch time (staleness bound).
    max_queue_delay: float = 0.05
    #: Per-session token refill rate (requests per virtual second);
    #: None disables rate limiting.
    rate_per_second: float | None = None
    #: Bucket capacity: how large a burst one session may land.
    burst: float = 16.0
    #: AIMD concurrency limiter bounds and steps.
    min_limit: int = 1
    max_limit: int = 64
    initial_limit: int = 8
    additive_increase: int = 1
    multiplicative_backoff: float = 0.5
    #: Virtual-time latency target per completed request; rounds above
    #: it back the limit off, rounds at or below it grow it.
    latency_target: float = 0.002
    #: Retry-After hint: base plus PRF-jittered extra, in seconds.
    retry_after_base: float = 0.05
    retry_after_jitter: float = 0.1
    #: Seed for the Retry-After jitter PRF; decisions stay a pure
    #: function of (seed, decision index).
    seed: int = 0
    priorities: dict = field(
        default_factory=lambda: dict(DEFAULT_PRIORITIES)
    )

    def priority_of(self, method: str) -> int:
        return self.priorities.get(method, 1)


@dataclass
class TokenBucket:
    """Virtual-time token bucket; state lives on the client session."""

    rate: float
    burst: float
    tokens: float
    updated: float

    def try_take(self, now: float, amount: float = 1.0) -> bool:
        """Refill to ``now`` and take ``amount`` tokens if available."""
        elapsed = max(0.0, now - self.updated)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.updated = max(self.updated, now)
        if self.tokens >= amount:
            self.tokens -= amount
            return True
        return False

    def seconds_until(self, amount: float = 1.0) -> float:
        """Virtual seconds until ``amount`` tokens will be available."""
        deficit = amount - self.tokens
        if deficit <= 0.0 or self.rate <= 0.0:
            return 0.0
        return deficit / self.rate


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check."""

    admitted: bool
    reason: str = ADMITTED
    status: int = 200
    retry_after: float | None = None

    def to_response(self) -> Response:
        """Render a shed decision through the standard error plumbing."""
        if self.admitted:
            raise ValueError("admitted requests have no shed response")
        exc: OverloadShed
        if self.status == RateLimited.status:
            exc = RateLimited(
                "session rate limit exceeded", retry_after=self.retry_after
            )
        else:
            exc = OverloadShed(
                f"request shed by admission control ({self.reason})",
                retry_after=self.retry_after,
            )
        return Response(
            status=exc.status,
            error=str(exc),
            retry_after=exc.retry_after,
        )


#: Shared decision for the common case (admitted, nothing to report).
ADMIT = AdmissionDecision(admitted=True)


@dataclass
class _QueueEntry:
    """One queued request plus its bookkeeping."""

    seq: int
    token: object
    priority: int
    enqueued_at: float
    deadline: float | None


class AdmissionQueue:
    """Bounded priority queue with deadline/queue-time shedding.

    Dispatch order is priority-descending, FIFO within a class.  On
    overflow the *lowest-priority newest* entry loses — the incoming
    request itself when nothing queued ranks below it.
    """

    def __init__(self, depth: int, max_delay: float):
        self.depth = depth
        self.max_delay = max_delay
        #: priority -> FIFO of entries; small fixed set of classes.
        self._classes: dict[int, deque[_QueueEntry]] = {}
        self._size = 0
        self.peak_depth = 0

    def __len__(self) -> int:
        return self._size

    def push(self, entry: _QueueEntry) -> _QueueEntry | None:
        """Enqueue ``entry``; returns the entry shed to make room (which
        may be ``entry`` itself), or None when nothing was shed."""
        victim = None
        if self._size >= self.depth:
            victim = self._pick_victim(entry)
            if victim is entry:
                return entry
            self._remove(victim)
        fifo = self._classes.setdefault(entry.priority, deque())
        fifo.append(entry)
        self._size += 1
        self.peak_depth = max(self.peak_depth, self._size)
        return victim

    def pop(self) -> _QueueEntry | None:
        """Dequeue the highest-priority oldest entry."""
        for priority in sorted(self._classes, reverse=True):
            fifo = self._classes[priority]
            if fifo:
                self._size -= 1
                return fifo.popleft()
        return None

    def expire(self, vnow: float) -> list[_QueueEntry]:
        """Remove every entry whose wait or deadline has run out."""
        expired: list[_QueueEntry] = []
        for fifo in self._classes.values():
            keep: deque[_QueueEntry] = deque()
            for entry in fifo:
                overdue = vnow - entry.enqueued_at > self.max_delay
                missed = (
                    entry.deadline is not None and vnow > entry.deadline
                )
                if overdue or missed:
                    expired.append(entry)
                else:
                    keep.append(entry)
            fifo.clear()
            fifo.extend(keep)
        self._size -= len(expired)
        expired.sort(key=lambda e: e.seq)
        return expired

    def _pick_victim(self, incoming: _QueueEntry) -> _QueueEntry:
        occupied = [p for p, fifo in self._classes.items() if fifo]
        if not occupied:
            return incoming
        lowest = min(occupied)
        if incoming.priority <= lowest:
            return incoming
        return self._classes[lowest][-1]  # newest of the lowest class

    def _remove(self, entry: _QueueEntry) -> None:
        self._classes[entry.priority].remove(entry)
        self._size -= 1


class AdaptiveLimiter:
    """AIMD concurrency limit on a virtual-time latency signal."""

    def __init__(self, config: AdmissionConfig):
        self._config = config
        self.limit = config.initial_limit
        self.increases = 0
        self.backoffs = 0

    def observe(self, latency: float) -> None:
        """Feed one round's mean per-request virtual latency."""
        config = self._config
        if latency > config.latency_target:
            shrunk = int(self.limit * config.multiplicative_backoff)
            self.limit = max(config.min_limit, shrunk)
            self.backoffs += 1
        else:
            self.limit = min(
                config.max_limit, self.limit + config.additive_increase
            )
            self.increases += 1


class AdmissionController:
    """Overload protection between the web server and the engine.

    One instance guards one controller (one shard).  The synchronous
    request path uses :meth:`check` (rate limit only — there is no
    queue when requests are served one at a time); the concurrent
    engine uses :meth:`offer` / :meth:`dispatch` / :meth:`observe` and
    lets the limiter govern its per-round dispatch width.
    """

    def __init__(
        self,
        config: AdmissionConfig | None = None,
        sessions=None,
        telemetry=None,
    ):
        self.config = config or AdmissionConfig()
        #: The SessionManager whose sessions carry the token buckets;
        #: bound late by the web server when not given here.
        self.sessions = sessions
        self.telemetry = telemetry or NULL_TELEMETRY
        self.queue = AdmissionQueue(
            self.config.queue_depth, self.config.max_queue_delay
        )
        self.limiter = AdaptiveLimiter(self.config)
        #: Every decision in order: ``(index, outcome, retry_after)``.
        #: Appended deterministically, folded into the engine trace.
        self.decision_log: list[tuple] = []
        #: Shed queue entries not yet claimed by the caller:
        #: ``(token, decision)`` pairs (see :meth:`take_shed`).
        self._shed: list[tuple[object, AdmissionDecision]] = []
        #: Optional :class:`repro.telemetry.audit.PolicyAuditor`.  When
        #: the web server wires one (the controller's), every shed at
        #: the admission gate lands in the same tamper-evident chain as
        #: policy verdicts — the audit trail then answers "why did this
        #: session get a 429/503?" alongside "which clause allowed it?".
        self.auditor = None
        self._seq = 0
        self.admitted = 0
        self.shed_by_reason: dict[str, int] = {}
        self._bind_instruments()

    def bind_telemetry(self, telemetry) -> None:
        """Late-bind a telemetry sink (the web server passes its
        controller's when the admission controller was built without
        one), re-registering the instruments against it.  A sink chosen
        at construction wins — only the null default is replaced."""
        if telemetry is None or self.telemetry is not NULL_TELEMETRY:
            return
        self.telemetry = telemetry
        self._bind_instruments()

    def _bind_instruments(self) -> None:
        self._m_decisions = self.telemetry.counter(
            "pesos_admission_decisions_total",
            "Admission decisions, by outcome.",
            ("outcome",),
        )
        self._g_queue = self.telemetry.gauge(
            "pesos_admission_queue_depth",
            "Requests currently waiting in the admission queue.",
        )
        self._g_limit = self.telemetry.gauge(
            "pesos_admission_limit",
            "Current AIMD concurrency limit (dispatches per round).",
        )
        self._h_wait = self.telemetry.histogram(
            "pesos_admission_queue_wait_seconds",
            "Virtual seconds admitted requests waited before dispatch.",
        )
        self._g_limit.set(self.limiter.limit)

    # -- rate limiting (sync + concurrent paths) ---------------------------

    def check(
        self, request: Request, fingerprint: str, now: float
    ) -> AdmissionDecision:
        """Per-session token-bucket check; the synchronous gate."""
        decision = self._record(self._check_rate(request, fingerprint, now))
        self._audit_shed(decision, request, fingerprint, now)
        return decision

    def _check_rate(
        self, request: Request, fingerprint: str, now: float
    ) -> AdmissionDecision:
        config = self.config
        if config.rate_per_second is None or self.sessions is None:
            return ADMIT
        session = self.sessions.connect(fingerprint, now=now)
        bucket = session.bucket
        if not isinstance(bucket, TokenBucket):
            bucket = TokenBucket(
                rate=config.rate_per_second,
                burst=config.burst,
                tokens=config.burst,
                updated=now,
            )
            session.bucket = bucket
        if bucket.try_take(now):
            return ADMIT
        hint = max(bucket.seconds_until(), self._jitter(SHED_RATE))
        return AdmissionDecision(
            admitted=False,
            reason=SHED_RATE,
            status=RateLimited.status,
            retry_after=round(hint, 9),
        )

    # -- queue (concurrent path) -------------------------------------------

    def offer(
        self,
        token: object,
        request: Request,
        fingerprint: str,
        now: float,
        vnow: float,
        deadline: float | None = None,
    ) -> AdmissionDecision:
        """Rate-check then enqueue one request for later dispatch.

        ``token`` is the caller's handle (an engine item, a bench op);
        it comes back from :meth:`dispatch` when admitted, or from
        :meth:`take_shed` when the queue later sheds it to make room.
        Returns the decision for *this* request only.
        """
        decision = self._check_rate(request, fingerprint, now)
        if not decision.admitted:
            decision = self._record(decision)
            self._audit_shed(decision, request, fingerprint, vnow)
            return decision
        entry = _QueueEntry(
            seq=self._next_seq(),
            token=token,
            priority=self.config.priority_of(request.method),
            enqueued_at=vnow,
            deadline=deadline,
        )
        victim = self.queue.push(entry)
        self._g_queue.set(len(self.queue))
        if victim is entry:
            decision = self._record(self._shed_decision(SHED_QUEUE_FULL))
            self._audit_shed(decision, request, fingerprint, vnow)
            return decision
        if victim is not None:
            shed = self._record(self._shed_decision(SHED_QUEUE_FULL))
            self._shed.append((victim.token, shed))
        return self._record(ADMIT)

    def dispatch(self, vnow: float, budget: int) -> list[object]:
        """Pop up to ``budget`` runnable tokens, shedding stale entries.

        Entries whose queue wait exceeded ``max_queue_delay`` — or
        whose absolute deadline passed — are shed here rather than
        served: by the time they would run, nobody is waiting.
        """
        for entry in self.queue.expire(vnow):
            reason = (
                SHED_DEADLINE
                if entry.deadline is not None and vnow > entry.deadline
                else SHED_QUEUE_DELAY
            )
            self._shed.append(
                (entry.token, self._record(self._shed_decision(reason)))
            )
        ready: list[object] = []
        while len(ready) < budget:
            entry = self.queue.pop()
            if entry is None:
                break
            self._h_wait.observe(max(0.0, vnow - entry.enqueued_at))
            ready.append(entry.token)
        self._g_queue.set(len(self.queue))
        return ready

    def take_shed(self) -> list[tuple[object, AdmissionDecision]]:
        """Claim (token, decision) pairs for entries shed from the queue."""
        shed, self._shed = self._shed, []
        return shed

    def observe(self, latency: float) -> None:
        """Feed the limiter one round's latency signal."""
        self.limiter.observe(latency)
        self._g_limit.set(self.limiter.limit)

    # -- reporting ---------------------------------------------------------

    def snapshot(self) -> dict:
        """Operator view, merged into ``GET /_health``."""
        return {
            "queue_depth": len(self.queue),
            "peak_queue_depth": self.queue.peak_depth,
            "limit": self.limiter.limit,
            "admitted": self.admitted,
            "shed": dict(sorted(self.shed_by_reason.items())),
        }

    def trace_lines(self) -> list[str]:
        """Canonical byte record of every decision, for replay checks."""
        return [
            "|".join(str(part) for part in entry)
            for entry in self.decision_log
        ]

    # -- internals ---------------------------------------------------------

    def _next_seq(self) -> int:
        seq = self._seq
        self._seq += 1
        return seq

    def _shed_decision(self, reason: str) -> AdmissionDecision:
        return AdmissionDecision(
            admitted=False,
            reason=reason,
            status=OverloadShed.status,
            retry_after=round(self._jitter(reason), 9),
        )

    def _jitter(self, reason: str) -> float:
        """Seeded PRF Retry-After: pure in (seed, decision index)."""
        config = self.config
        digest = hashlib.sha256(
            f"{config.seed}:{len(self.decision_log)}:{reason}".encode()
        ).digest()
        frac = int.from_bytes(digest[:8], "big") / 2**64
        return config.retry_after_base + frac * config.retry_after_jitter

    def _audit_shed(
        self,
        decision: AdmissionDecision,
        request: Request,
        fingerprint: str,
        vnow: float,
    ) -> None:
        """Append a shed to the audit chain (queue-eviction sheds of
        *other* requests carry no request context here and stay in
        :attr:`decision_log` only)."""
        if decision.admitted or self.auditor is None:
            return
        self.auditor.record_shed(
            method=request.method,
            reason=decision.reason,
            session=fingerprint,
            key=request.key or "",
            vnow=vnow,
        )

    def _record(self, decision: AdmissionDecision) -> AdmissionDecision:
        index = len(self.decision_log)
        self.decision_log.append(
            (
                index,
                decision.reason,
                decision.status,
                "-"
                if decision.retry_after is None
                else f"{decision.retry_after:.9f}",
            )
        )
        if decision.admitted:
            self.admitted += 1
        else:
            self.shed_by_reason[decision.reason] = (
                self.shed_by_reason.get(decision.reason, 0) + 1
            )
            with self.telemetry.span(
                "admission.shed",
                reason=decision.reason,
                status=decision.status,
            ):
                pass
        self._m_decisions.labels(decision.reason).inc()
        return decision
