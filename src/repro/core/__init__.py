"""The Pesos controller: the paper's unified enforcement layer.

Everything between the client REST interface and the Kinetic drives
lives here, in one layer, exactly as the paper argues it should:

- :mod:`repro.core.request` — REST request/response model.
- :mod:`repro.core.session` — per-client session contexts (§3.1).
- :mod:`repro.core.cache` — the bounded in-enclave cache regions (§4.2).
- :mod:`repro.core.asyncapi` — the asynchronous operation API (§4.1).
- :mod:`repro.core.store` — the object store over Kinetic drives:
  versioned layout, AES-GCM-style payload encryption, replication
  placement (§4.5).
- :mod:`repro.core.txn` — VLL-based ACID transactions (§4.4).
- :mod:`repro.core.controller` — bootstrap (attestation, disk lock-out)
  and the request handler that enforces policies on every access.
"""

from repro.core.controller import (
    ControllerConfig,
    PesosController,
    verify_attestation,
)
from repro.core.hashring import ElasticStore, HashRing
from repro.core.request import Request, Response
from repro.core.session import Session, SessionManager
from repro.core.sharding import ShardedPesos
from repro.core.ssdcache import SsdCacheTier
from repro.core.store import ObjectStore, StoredMeta
from repro.core.webserver import WebServer

__all__ = [
    "ControllerConfig",
    "ElasticStore",
    "HashRing",
    "ObjectStore",
    "PesosController",
    "Request",
    "Response",
    "Session",
    "SessionManager",
    "ShardedPesos",
    "SsdCacheTier",
    "StoredMeta",
    "WebServer",
    "verify_attestation",
]
