"""The embedded web server (the paper's mongoose stand-in, §3.1-§3.2).

Terminates client connections, parses HTTP POST requests, hands them
to the request handler, and renders responses — steps 2-3 of the
paper's request flow.  Two front-ends share the parsing logic:

- :meth:`WebServer.handle_bytes` — raw HTTP bytes in, raw HTTP bytes
  out, for clients that speak the wire format.
- :meth:`WebServer.accept` — establishes a mutually-authenticated
  secure channel (the TLS session) and returns a
  :class:`ClientConnection` that decrypts requests, authenticates the
  client by certificate fingerprint, and encrypts responses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.controller import PesosController
from repro.core.request import (
    Response,
    parse_http_request,
    render_http_response,
)
from repro.crypto.certs import KeyPair, TrustStore
from repro.crypto.channel import SecureChannel, establish_channel
from repro.errors import PesosError


@dataclass
class ServerStats:
    requests: int = 0
    errors: int = 0
    bytes_in: int = 0
    bytes_out: int = 0


class WebServer:
    """Connection handling + HTTP parsing in front of the controller."""

    def __init__(
        self,
        controller: PesosController,
        server_keys: KeyPair | None = None,
        client_trust: TrustStore | None = None,
    ):
        self.controller = controller
        self.server_keys = server_keys
        self.client_trust = client_trust
        self.stats = ServerStats()

    # -- plain HTTP front-end ---------------------------------------------

    def handle_bytes(
        self, raw: bytes, fingerprint: str, now: float = 0.0
    ) -> bytes:
        """One request/response cycle over raw HTTP bytes.

        ``fingerprint`` identifies the authenticated client (in the
        TLS front-end it comes from the session's peer certificate).
        """
        self.stats.requests += 1
        self.stats.bytes_in += len(raw)
        try:
            request = parse_http_request(raw)
            response = self.controller.handle(request, fingerprint, now)
        except PesosError as exc:
            response = Response(status=exc.status, error=str(exc))
        if not response.ok:
            self.stats.errors += 1
        rendered = render_http_response(response)
        self.stats.bytes_out += len(rendered)
        return rendered

    # -- TLS front-end ----------------------------------------------------------

    def accept(
        self, client_keys: KeyPair, now: float = 0.0
    ) -> tuple["ClientConnection", SecureChannel]:
        """Run the handshake with a connecting client.

        Returns the server-side connection object and the *client's*
        channel endpoint (which a real deployment would hold on the
        other end of the network).
        """
        if self.server_keys is None or self.client_trust is None:
            raise PesosError("server has no TLS identity configured")
        server_trust = self.client_trust
        client_trust = TrustStore()
        # The client must be able to verify the server certificate; in
        # tests/examples both sides trust the same roots.
        client_trust.authorities = list(server_trust.authorities)
        client_end, server_end = establish_channel(
            initiator=client_keys,
            responder=self.server_keys,
            initiator_trust=client_trust,
            responder_trust=server_trust,
            now=now,
        )
        return ClientConnection(server=self, channel=server_end), client_end


@dataclass
class ClientConnection:
    """One authenticated TLS session terminated inside the enclave."""

    server: WebServer
    channel: SecureChannel
    requests_served: int = field(default=0)

    @property
    def fingerprint(self) -> str:
        return self.channel.peer_fingerprint

    def serve(self, encrypted_request: bytes, now: float = 0.0) -> bytes:
        """Decrypt, execute, and encrypt one request record."""
        raw = self.channel.recv(encrypted_request)
        response = self.server.handle_bytes(raw, self.fingerprint, now)
        self.requests_served += 1
        return self.channel.send(response)
