"""The embedded web server (the paper's mongoose stand-in, §3.1-§3.2).

Terminates client connections, parses HTTP POST requests, hands them
to the request handler, and renders responses — steps 2-3 of the
paper's request flow.  Two front-ends share the parsing logic:

- :meth:`WebServer.handle_bytes` — raw HTTP bytes in, raw HTTP bytes
  out, for clients that speak the wire format.
- :meth:`WebServer.accept` — establishes a mutually-authenticated
  secure channel (the TLS session) and returns a
  :class:`ClientConnection` that decrypts requests, authenticates the
  client by certificate fingerprint, and encrypts responses.

The server is also the admin surface for telemetry and operations:
``GET /_metrics`` returns the registry in Prometheus text format
(``?format=json`` for JSON), ``GET /_traces`` returns recent span
trees plus the slow-request log, and ``GET /_health`` reports
per-drive breaker state and quorum standing (HTTP 503 once the fleet
cannot meet the write quorum, so load balancers can eject the
instance).  Admin requests bypass request accounting so scrapes do not
distort the serving metrics.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from urllib.parse import parse_qs, urlparse

from repro.core.controller import PesosController
from repro.core.request import (
    Response,
    parse_http_request,
    render_http_response,
)
from repro.crypto.certs import KeyPair, TrustStore
from repro.crypto.channel import SecureChannel, establish_channel
from repro.errors import PesosError
from repro.telemetry import (
    Telemetry,
    render_families,
    render_json,
    render_prometheus,
    render_traces_json,
)


class ServerStats:
    """Legacy stats facade, now a thin view over registry counters.

    Pre-telemetry code (tests, examples, ops scripts) reads
    ``server.stats.requests`` and friends; these properties report the
    live values from the metrics registry.  With telemetry explicitly
    disabled the readings are zero, like every other instrument.
    """

    __slots__ = ("_requests", "_errors", "_bytes")

    def __init__(self, requests_counter, errors_counter, bytes_counter):
        self._requests = requests_counter
        self._errors = errors_counter
        self._bytes = bytes_counter

    @property
    def requests(self) -> int:
        return int(self._requests.value)

    @property
    def errors(self) -> int:
        return int(self._errors.value)

    @property
    def bytes_in(self) -> int:
        return int(self._bytes.labels("in").value)

    @property
    def bytes_out(self) -> int:
        return int(self._bytes.labels("out").value)

    def __repr__(self) -> str:
        return (
            f"ServerStats(requests={self.requests}, errors={self.errors}, "
            f"bytes_in={self.bytes_in}, bytes_out={self.bytes_out})"
        )


class WebServer:
    """Connection handling + HTTP parsing in front of the controller."""

    def __init__(
        self,
        controller: PesosController,
        server_keys: KeyPair | None = None,
        client_trust: TrustStore | None = None,
        telemetry=None,
        admission=None,
    ):
        self.controller = controller
        self.server_keys = server_keys
        self.client_trust = client_trust
        #: Overload protection (:class:`repro.core.admission
        #: .AdmissionController`).  When set, the synchronous path rate
        #: limits per session before the controller runs, and
        #: :meth:`handle_batch` hands the same instance to its engine
        #: so the bounded queue and AIMD limiter govern dispatch.
        self.admission = admission
        if admission is not None:
            if admission.sessions is None:
                admission.sessions = controller.sessions
            admission.bind_telemetry(controller.telemetry)
            if admission.auditor is None:
                # Sheds join the controller's tamper-evident chain so
                # the audit trail covers the full decision surface.
                admission.auditor = controller.auditor
        if telemetry is None:
            # Share the controller's telemetry when it has a live one,
            # so /_metrics covers every layer in one registry.
            controller_telemetry = getattr(controller, "telemetry", None)
            if controller_telemetry is not None and controller_telemetry.enabled:
                telemetry = controller_telemetry
            else:
                telemetry = Telemetry()
        self.telemetry = telemetry
        self._m_requests = telemetry.counter(
            "pesos_http_requests_total",
            "Client request cycles entered (admin scrapes excluded).",
        )
        self._m_responses = telemetry.counter(
            "pesos_http_responses_total",
            "Responses rendered, by HTTP status.",
            ("status",),
        )
        self._m_errors = telemetry.counter(
            "pesos_http_errors_total",
            "Error responses plus parse failures, by kind.",
            ("kind",),
        )
        self._m_bytes = telemetry.counter(
            "pesos_http_bytes_total",
            "Request/response bytes through the front-end, by direction.",
            ("direction",),
        )
        self._m_handshakes = telemetry.counter(
            "pesos_tls_handshakes_total",
            "Mutually-authenticated TLS sessions established.",
        )
        self.stats = ServerStats(
            self._m_requests, self._m_errors, self._m_bytes
        )

    # -- plain HTTP front-end ---------------------------------------------

    def handle_bytes(
        self, raw: bytes, fingerprint: str, now: float = 0.0  # pesos: allow[det-default-clock]
    ) -> bytes:
        """One request/response cycle over raw HTTP bytes.

        ``fingerprint`` identifies the authenticated client (in the
        TLS front-end it comes from the session's peer certificate).
        """
        if raw.startswith(b"GET /_"):
            return self._handle_admin(raw)
        telemetry = self.telemetry
        self._m_requests.inc()
        self._m_bytes.labels("in").inc(len(raw))
        method: str | None = None
        with telemetry.span("http.request", fingerprint=fingerprint) as root:
            try:
                with telemetry.span("http.parse", bytes=len(raw)):
                    request = parse_http_request(raw)
            except PesosError as exc:
                response = Response(status=exc.status, error=str(exc))
            # Deliberately broad: *any* non-protocol failure
            # (framing bug, codec crash) must be counted before it
            # propagates to the transport layer, and it is re-raised
            # unmodified — nothing is swallowed or leaked.
            # pesos: allow[core-no-swallow]
            except Exception:
                self._m_errors.labels("parse_failure").inc()
                root.set("error", "parse_failure")
                raise
            else:
                method = request.method
                root.set("method", request.method)
                if request.key:
                    root.set("key", request.key)
                decision = (
                    None
                    if self.admission is None
                    else self.admission.check(request, fingerprint, now)
                )
                if decision is not None and not decision.admitted:
                    # Shed before any side effect: the controller never
                    # sees the request, so retrying is always safe.
                    response = decision.to_response()
                    root.set("shed", decision.reason)
                else:
                    try:
                        response = self.controller.handle(
                            request, fingerprint, now
                        )
                    except PesosError as exc:
                        response = Response(
                            status=exc.status,
                            error=str(exc),
                            retry_after=getattr(exc, "retry_after", None),
                        )
            self._m_responses.labels(str(response.status)).inc()
            if not response.ok:
                self._m_errors.labels("response").inc()
            root.set("status", response.status)
            with telemetry.span("http.render"):
                rendered = render_http_response(response)
        if method is not None:
            # Fold the finished request into the SLO error budgets:
            # virtual duration when the tracer has a virtual clock
            # (benchmarks), wall seconds otherwise.  Sheds count as bad
            # events — the client did not get service.
            latency = root.virtual_duration
            if latency is None:
                latency = root.duration
            telemetry.record_request(
                method, response.ok, latency, now, trace_id=root.trace_id
            )
        self._m_bytes.labels("out").inc(len(rendered))
        return rendered

    # -- concurrent batch front-end ---------------------------------------

    def handle_batch(
        self,
        items: list[tuple[bytes, str]],
        seed: int = 0,
        workers: int = 8,
        now: float = 0.0,  # pesos: allow[det-default-clock]
    ) -> list[bytes]:
        """Serve many raw-HTTP requests concurrently; responses in order.

        ``items`` is a list of ``(raw_bytes, fingerprint)`` pairs —
        one per client connection with a request pending.  Requests are
        parsed on the main thread (parse failures answer inline and
        never reach the engine), then run as green threads on a
        :class:`~repro.core.engine.ConcurrentEngine` whose dispatch
        order is fixed by ``seed``; overlapping requests preempt each
        other at every drive operation exactly as under real load.
        """
        from repro.core.engine import ConcurrentEngine

        rendered: list[bytes | None] = [None] * len(items)
        parsed: list[tuple[int, object, str]] = []
        for index, (raw, fingerprint) in enumerate(items):
            self._m_requests.inc()
            self._m_bytes.labels("in").inc(len(raw))
            try:
                request = parse_http_request(raw)
            except PesosError as exc:
                response = Response(status=exc.status, error=str(exc))
                self._m_responses.labels(str(response.status)).inc()
                self._m_errors.labels("response").inc()
                rendered[index] = render_http_response(response)
            else:
                parsed.append((index, request, fingerprint))

        # Group same-policy reads and evaluate them in one pass over
        # the compiled form before dispatch; per-request handling then
        # hits the decision cache.  Purely an accelerator — requests
        # the prewarmer skips (cold caches, object-reading policies)
        # behave exactly as before.
        prewarm = getattr(self.controller, "prewarm_policy_batch", None)
        if prewarm is not None and parsed:
            prewarm(
                [(request, fp) for _index, request, fp in parsed], now
            )

        with ConcurrentEngine(
            self.controller,
            seed=seed,
            hardware_threads=workers,
            admission=self.admission,
        ) as engine:
            for _index, request, fingerprint in parsed:
                engine.submit(request, fingerprint, now=now)
            responses = engine.run()

        for (index, _request, _fingerprint), response in zip(
            parsed, responses
        ):
            self._m_responses.labels(str(response.status)).inc()
            if not response.ok:
                self._m_errors.labels("response").inc()
            rendered[index] = render_http_response(response)
        for raw_response in rendered:
            assert raw_response is not None
            self._m_bytes.labels("out").inc(len(raw_response))
        return rendered  # type: ignore[return-value]

    # -- admin surface ----------------------------------------------------

    def _handle_admin(self, raw: bytes) -> bytes:
        """Serve ``/_health``, ``/_metrics``, ``/_traces``, ``/_slo``,
        and ``/_audit``."""
        request_line = raw.split(b"\r\n", 1)[0].decode("latin-1")
        parts = request_line.split(" ")
        target = parts[1] if len(parts) > 1 else ""
        parsed = urlparse(target)
        params = parse_qs(parsed.query)
        if parsed.path == "/_health":
            # Health must answer even with telemetry disabled: it is
            # what the load balancer polls when things go wrong.
            report = self.controller.health()
            slo = self.telemetry.slo if self.telemetry.enabled else None
            if slo is not None:
                # Fold budget burn into the verdict: a store meeting
                # quorum but hemorrhaging its error budget is not "ok".
                severity = ("ok", "degraded", "critical")
                slo_status = slo.health_status()
                report["slo"] = {
                    "status": slo_status,
                    "worst_state": slo.worst_state(),
                }
                report["status"] = max(
                    report["status"], slo_status, key=severity.index
                )
            if self.admission is not None:
                report["admission"] = self.admission.snapshot()
            status = 503 if report["status"] == "critical" else 200
            body = json.dumps(report, sort_keys=True).encode() + b"\n"
            return _admin_response(status, "application/json", body)
        if parsed.path == "/_audit":
            # The audit chain is a security artifact, not telemetry: it
            # answers even when metrics are off (it is config-gated by
            # ``ControllerConfig.audit_log_size`` instead).
            auditor = self.controller.auditor
            if auditor is None:
                return _admin_response(
                    503, "text/plain", b"audit log disabled\n"
                )
            try:
                limit = int(params.get("limit", ["64"])[0])
            except ValueError:
                limit = 64
            verify = params.get("verify", ["0"])[0] not in ("", "0")
            snapshot = auditor.snapshot(limit=limit, verify=verify)
            status = 200
            if verify and not snapshot["verification"]["ok"]:
                status = 500  # the chain itself is the failing component
            body = json.dumps(snapshot, sort_keys=True).encode() + b"\n"
            return _admin_response(status, "application/json", body)
        if not self.telemetry.enabled:
            return _admin_response(
                503, "text/plain", b"telemetry disabled\n"
            )
        if parsed.path == "/_metrics":
            if params.get("format", [""])[0] == "json":
                body = render_json(self.telemetry.registry).encode()
                return _admin_response(200, "application/json", body)
            body = render_prometheus(self.telemetry.registry).encode()
            return _admin_response(
                200, "text/plain; version=0.0.4; charset=utf-8", body
            )
        if parsed.path == "/_slo":
            slo = self.telemetry.slo
            if slo is None:
                return _admin_response(
                    503, "text/plain", b"no slo engine attached\n"
                )
            if params.get("format", [""])[0] == "prometheus":
                body = render_families(list(slo.metric_families())).encode()
                return _admin_response(
                    200, "text/plain; version=0.0.4; charset=utf-8", body
                )
            body = json.dumps(slo.snapshot(), sort_keys=True).encode() + b"\n"
            return _admin_response(200, "application/json", body)
        if parsed.path == "/_traces":
            try:
                limit = int(params.get("limit", ["32"])[0])
            except ValueError:
                limit = 32
            slow_only = params.get("slow", ["0"])[0] not in ("", "0")
            body = render_traces_json(
                self.telemetry.tracer, limit, slow_only=slow_only
            ).encode()
            return _admin_response(200, "application/json", body)
        return _admin_response(404, "text/plain", b"unknown admin path\n")

    # -- TLS front-end ----------------------------------------------------------

    def accept(
        self, client_keys: KeyPair, now: float = 0.0  # pesos: allow[det-default-clock]
    ) -> tuple["ClientConnection", SecureChannel]:
        """Run the handshake with a connecting client.

        Returns the server-side connection object and the *client's*
        channel endpoint (which a real deployment would hold on the
        other end of the network).
        """
        if self.server_keys is None or self.client_trust is None:
            raise PesosError("server has no TLS identity configured")
        server_trust = self.client_trust
        client_trust = TrustStore()
        # The client must be able to verify the server certificate; in
        # tests/examples both sides trust the same roots.
        client_trust.authorities = list(server_trust.authorities)
        with self.telemetry.span("tls.handshake"):
            client_end, server_end = establish_channel(
                initiator=client_keys,
                responder=self.server_keys,
                initiator_trust=client_trust,
                responder_trust=server_trust,
                now=now,
            )
        self._m_handshakes.inc()
        return ClientConnection(server=self, channel=server_end), client_end


def _admin_response(status: int, content_type: str, body: bytes) -> bytes:
    reason = {200: "OK", 404: "Not Found", 503: "Service Unavailable"}.get(
        status, "Unknown"
    )
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
    )
    return head.encode() + b"\r\n" + body


@dataclass
class ClientConnection:
    """One authenticated TLS session terminated inside the enclave."""

    server: WebServer
    channel: SecureChannel
    requests_served: int = field(default=0)

    @property
    def fingerprint(self) -> str:
        return self.channel.peer_fingerprint

    def serve(self, encrypted_request: bytes, now: float = 0.0) -> bytes:  # pesos: allow[det-default-clock]
        """Decrypt, execute, and encrypt one request record."""
        raw = self.channel.recv(encrypted_request)
        response = self.server.handle_bytes(raw, self.fingerprint, now)
        self.requests_served += 1
        return self.channel.send(response)
