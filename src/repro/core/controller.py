"""The Pesos controller (§3).

One object owns the full request path: session management, the policy
compiler/interpreter, cache regions, the asynchronous API, the VLL
transaction manager, and the encrypted object store over Kinetic
drives.  :meth:`PesosController.handle` is the single entry point the
web-server layer (and every benchmark) calls per request.

Bootstrap (§3.1): :meth:`PesosController.launch` runs the paper's
deployment flow — launch the enclave, remotely attest against the
attestation service to receive runtime secrets, connect to every
configured Kinetic drive with the factory credentials, and take
exclusive control by replacing all drive accounts with a single
controller-only admin identity.
"""

from __future__ import annotations

import secrets as _secrets
import time as _time
from dataclasses import dataclass, field

from repro.analysis.policy_verify import verify_policy, warnings_payload
from repro.core.antientropy import AntiEntropyRepairer
from repro.core.asyncapi import AsyncTracker
from repro.core.cache import CacheConfig, CacheManager
from repro.core.effects import (
    COPY,
    DISK_DELETE,
    DISK_READ,
    DISK_WRITE,
    EffectsRecorder,
    POLICY_CHECK,
    POLICY_COMPILE,
    POLICY_LOAD,
)
from repro.core.request import Request, Response
from repro.core.session import Session, SessionManager
from repro.core.ssdcache import SSD_READ, SSD_WRITE
from repro.core.locks import KeyLockTable
from repro.core.store import ObjectStore, StoreBackedView, StoredMeta
from repro.core.txn import Transaction, VllManager
from repro.crypto.aead import StreamAead
from repro.errors import (
    ForkDetected,
    ObjectNotFound,
    PesosError,
    PolicyDenied,
    RequestError,
    TransactionError,
)
from repro.kinetic.drive import KineticDrive, Role
from repro.policy.binary import CompiledPolicy
from repro.policy.compiled import PolicyEngine, compiled_form
from repro.policy.compiler import compile_source
from repro.policy.context import EvalContext, VersionInfo
from repro.policy.interpreter import PolicyInterpreter
from repro.telemetry import NULL_TELEMETRY
from repro.telemetry.audit import PolicyAuditor
from repro.telemetry.metrics import MetricFamily, Sample


@dataclass
class ControllerConfig:
    """Tunables for one controller instance."""

    replication_factor: int = 1
    keep_history: bool = True
    cache: CacheConfig = field(default_factory=CacheConfig)
    session_expiry: float = 3600.0
    #: Suffix used to resolve the ``log`` reference when the request
    #: does not name a log object explicitly (MAL convention).
    log_suffix: str = ".log"
    #: AEAD construction for payload encryption.
    aead_factory: type = StreamAead
    #: Disable policy checking entirely (the paper's "without policy
    #: enforcement" baseline used in §6.2).
    enforce_policies: bool = True
    #: Run the static verifier (:mod:`repro.analysis.policy_verify`)
    #: on every stored policy; findings come back as structured
    #: warnings on the PUT response, never as rejections.
    verify_policies: bool = True
    #: Bound on per-version metadata kept per object (see
    #: :class:`repro.core.store.ObjectStore`); None keeps everything.
    version_metadata_window: int | None = None
    #: Entries in the untrusted-SSD cache tier's freshness table
    #: (see :mod:`repro.core.ssdcache`); None disables the tier.
    ssd_cache_entries: int | None = None
    #: Replicas that must persist a write before it is acknowledged;
    #: None means every replica of the placement (§3.2 write-through).
    write_quorum: int | None = None
    #: Consecutive per-drive failures before its circuit breaker opens,
    #: and store operations to wait before a half-open probe.
    breaker_threshold: int = 3
    breaker_cooldown_ops: int = 64
    #: Pump one anti-entropy repair pass every N handled requests;
    #: None disables the background loop (tests pump it directly).
    anti_entropy_interval: int | None = None
    #: Journal keys repaired per anti-entropy pass.
    anti_entropy_batch: int = 4
    #: Retained records in the tamper-evident policy-decision audit
    #: chain (:mod:`repro.sgx.auditlog`); None disables auditing and
    #: keeps the policy hot path free of hashing.
    audit_log_size: int | None = None
    #: Upper bound on records one ``scan`` request may cover; larger
    #: requests are clamped, never refused (YCSB-E scan lengths are
    #: client-chosen, the enclave bounds its own work).
    max_scan_count: int = 1000
    #: Evaluate policies through the compiled fast path
    #: (:mod:`repro.policy.compiled`): per-policy specialized closures
    #: fronted by a decision cache keyed on (policy hash, operation,
    #: request shape, store epoch).  Decisions — and the audit chain
    #: built from them — are identical either way; off means every
    #: check walks the binary-format interpreter.
    compile_policies: bool = True
    #: Bound on memoized policy decisions (per controller).
    decision_cache_entries: int = 4096
    #: Root object/policy metadata in an authenticated dictionary
    #: pinned by a sealed monotonic counter
    #: (:mod:`repro.core.freshness`): reads verify Merkle proofs
    #: instead of trusting replica version numbers, and startup
    #: refuses to serve after fork detection.  Implied by passing a
    #: ``freshness_env`` to the controller.
    freshness_enabled: bool = False
    #: Entries in the freshness proof cache (keyed by pin epoch).
    freshness_cache_entries: int = 4096


def attestation_statement(
    key: str,
    version: int,
    content_hash: str,
    policy_hash: str,
    policy_id: str,
    timestamp: float,
) -> bytes:
    """Canonical byte encoding of one storage attestation."""
    import json

    return json.dumps(
        {
            "key": key,
            "version": version,
            "content_hash": content_hash,
            "policy_hash": policy_hash,
            "policy_id": policy_id,
            "timestamp": timestamp,
        },
        sort_keys=True,
        separators=(",", ":"),
    ).encode()


def verify_attestation(statement: bytes, signature: bytes, public_key) -> dict:
    """Client-side check of a storage attestation.

    Returns the parsed statement; raises on a bad signature.
    """
    import json

    from repro.errors import IntegrityError

    if not public_key.verify(statement, signature):
        raise IntegrityError("attestation signature invalid")
    return json.loads(statement)


class _ViewMap:
    """Lazy object-id → view mapping handed to the policy context."""

    def __init__(self, controller: "PesosController"):
        self._controller = controller
        self._views: dict = {}

    def get(self, object_id: str):
        if object_id in self._views:
            return self._views[object_id]
        meta = self._controller._get_meta(object_id)
        view = None
        if meta is not None and meta.exists:
            view = StoreBackedView(
                meta, self._controller.store, self._controller.caches
            )
        self._views[object_id] = view
        return view


class PesosController:
    """The trusted controller running inside the enclave."""

    def __init__(
        self,
        clients: list,
        storage_key: bytes | None = None,
        config: ControllerConfig | None = None,
        authority_keys: dict | None = None,
        effects: EffectsRecorder | None = None,
        signing_keys=None,
        telemetry=None,
        freshness_env=None,
    ):
        self.config = config or ControllerConfig()
        self.telemetry = telemetry or NULL_TELEMETRY
        registry = self.telemetry.registry if self.telemetry.enabled else None
        self.effects = effects or EffectsRecorder(registry=registry)
        self.caches = CacheManager(
            self.config.cache, self.effects, telemetry=self.telemetry
        )
        self.sessions = SessionManager(self.config.session_expiry)
        self.async_tracker = AsyncTracker()
        self.interpreter = PolicyInterpreter()
        #: Compiled-closure fast path + decision cache; None means every
        #: check goes through ``self.interpreter`` directly.
        self.policy_engine = None
        if self.config.compile_policies:
            self.policy_engine = PolicyEngine(
                interpreter=self.interpreter,
                cache_entries=self.config.decision_cache_entries,
            )
        #: Tamper-evident policy-decision trail (``GET /_audit``).
        #: Enabled by config, not by telemetry: the chain is a security
        #: artifact and must exist (and stay deterministic) even when
        #: metrics are off.
        self.auditor: PolicyAuditor | None = None
        if self.config.audit_log_size:
            self.auditor = PolicyAuditor(
                capacity=self.config.audit_log_size,
                telemetry=self.telemetry,
            )
        self.store = ObjectStore(
            clients,
            storage_key or _secrets.token_bytes(32),
            replication_factor=self.config.replication_factor,
            keep_history=self.config.keep_history,
            effects=self.effects,
            aead_factory=self.config.aead_factory,
            version_metadata_window=self.config.version_metadata_window,
            telemetry=self.telemetry,
            write_quorum=self.config.write_quorum,
            breaker_threshold=self.config.breaker_threshold,
            breaker_cooldown_ops=self.config.breaker_cooldown_ops,
        )
        self.anti_entropy = AntiEntropyRepairer(
            self.store, telemetry=self.telemetry
        )
        #: Rollback/fork protection (:mod:`repro.core.freshness`):
        #: created before the store is wired to it, so the bootstrap
        #: rebuild reads raw quorum state.  A forked authority stays
        #: attached to the controller (health must report it) but is
        #: never attached to the store — the request gate refuses
        #: service before any read happens.
        self.freshness = None
        if self.config.freshness_enabled or freshness_env is not None:
            from repro.core.freshness import (
                FreshnessAuthority,
                FreshnessEnvironment,
            )

            env = freshness_env or FreshnessEnvironment.ephemeral()
            self.freshness = FreshnessAuthority(
                env,
                telemetry=self.telemetry,
                auditor=self.auditor,
                cache_entries=self.config.freshness_cache_entries,
            )
            self.freshness.bootstrap(self.store)
            if not self.freshness.forked:
                self.store.freshness = self.freshness
        #: Public keys of external authorities (time servers, group
        #: CAs) by fingerprint, available to certificateSays.
        self.authority_keys = dict(authority_keys or {})
        #: Per-key locks for non-transactional requests.  Idle (and
        #: free) under the sequential request path; the concurrent
        #: engine acquires them so overlapping requests on the same
        #: object stay serializable.  Wired to the VLL manager both
        #: ways: transactional locks conflict with request locks, and
        #: releasing a request lock drains the transaction queue.
        self.request_locks = KeyLockTable()
        self.txns = VllManager(
            self._execute_transaction,
            telemetry=self.telemetry,
            request_locks=self.request_locks,
        )
        self.request_locks.bind(
            conflicts=self.txns.holds, on_release=self.txns.notify_release
        )
        self.requests_handled = 0
        #: Controller identity used to sign storage attestations (§1:
        #: "cryptographic attestation for the stored objects and their
        #: associated policies").  A :class:`repro.crypto.certs.KeyPair`.
        self.signing_keys = signing_keys
        #: Optional untrusted-SSD cache tier between the enclave
        #: caches and the drives (paper future work; §8).
        self.ssd_cache = None
        if self.config.ssd_cache_entries:
            from repro.core.ssdcache import SsdCacheTier

            self.ssd_cache = SsdCacheTier(
                max_entries=self.config.ssd_cache_entries,
                effects=self.effects,
                telemetry=self.telemetry,
            )
        self._m_ops = self.telemetry.counter(
            "pesos_controller_requests_total",
            "Requests handled by the controller, by method and outcome.",
            ("method", "outcome"),
        )
        self._m_denied = self.telemetry.counter(
            "pesos_policy_denials_total",
            "Requests refused by policy evaluation, by operation.",
            ("operation",),
        )
        self._h_policy_check = self.telemetry.histogram(
            "pesos_policy_check_seconds",
            "Wall time evaluating one compiled policy.",
        )
        self._h_policy_compile = self.telemetry.histogram(
            "pesos_policy_compile_seconds",
            "Wall time compiling policy source to the binary format.",
        )
        self._m_transitions = self.telemetry.counter(
            "pesos_sgx_transitions_total",
            "Estimated enclave transitions (async syscall submissions) "
            "per the cost model: 2 per client socket pair, 2 per drive "
            "operation, 1 per SSD-tier access.",
            ("reason",),
        )
        if self.telemetry.enabled:
            self.telemetry.register_callback(self._derived_metrics)

    # ------------------------------------------------------------------
    # Bootstrap
    # ------------------------------------------------------------------

    @classmethod
    def launch(
        cls,
        binary,
        platform,
        attestation_service,
        cluster,
        config: ControllerConfig | None = None,
        authority_keys: dict | None = None,
        telemetry=None,
    ) -> "PesosController":
        """Full §3.1 bootstrap: attest, connect, lock out everyone else."""
        from repro.sgx.attestation import attest_and_provision

        enclave = platform.launch(binary)
        provided = attest_and_provision(attestation_service, platform, enclave)
        storage_key = bytes.fromhex(provided["storage_key"])
        admin_identity = provided["disk_identity"]
        admin_key = bytes.fromhex(provided["disk_hmac_key"])

        # Connect with factory credentials, then atomically replace the
        # account table with our single admin account on every drive —
        # locking out all other users, including the cloud provider.
        factory_clients = cluster.connect_all(
            KineticDrive.DEMO_IDENTITY, KineticDrive.DEMO_KEY
        )
        for client in factory_clients:
            # Provisioning the drive's account table necessarily sends
            # the admin HMAC credential over the wire: this is the
            # Kinetic security-setup protocol itself (done once, under
            # the factory identity, before any client traffic).
            # pesos: allow[taint/wire-frame]
            client.set_security([(admin_identity, admin_key, Role.all())])
        clients = cluster.connect_all(admin_identity, admin_key)
        return cls(
            clients,
            storage_key=storage_key,
            config=config,
            authority_keys=authority_keys,
            telemetry=telemetry,
        )

    # ------------------------------------------------------------------
    # Request dispatch
    # ------------------------------------------------------------------

    def handle(
        self, request: Request, fingerprint: str, now: float = 0.0  # pesos: allow[det-default-clock]
    ) -> Response:
        """Execute one authenticated client request."""
        self.requests_handled += 1
        if self.config.anti_entropy_interval:
            self._pump_anti_entropy()
        telemetry = self.telemetry
        if not telemetry.enabled:
            # Uninstrumented fast path: identical to the historical
            # request loop, so benchmark numbers are unaffected.
            try:
                self._freshness_gate(now)
                request.validate()
                session = self.sessions.connect(fingerprint, now=now)
                session.touch(now)
                if request.asynchronous:
                    return self._handle_async(request, session, now)
                return self._dispatch(request, session, now)
            except PesosError as exc:
                return self._error_response(exc)
        events_before = len(self.effects.events)
        with telemetry.span(
            "controller.handle", method=request.method, now=now
        ) as span:
            if request.key:
                span.set("key", request.key)
            try:
                self._freshness_gate(now)
                request.validate()
                session = self.sessions.connect(fingerprint, now=now)
                session.touch(now)
                if request.asynchronous:
                    response = self._handle_async(request, session, now)
                else:
                    response = self._dispatch(request, session, now)
            except PesosError as exc:
                response = self._error_response(exc)
            span.set("status", response.status)
            if response.ok:
                outcome = "ok"
            elif response.status == 403:
                outcome = "denied"
            else:
                outcome = "error"
            self._m_ops.labels(request.method, outcome).inc()
            self._count_transitions(events_before)
        return response

    def _freshness_gate(self, now: float) -> None:
        """Refuse every request while fork detection holds the line.

        Also stamps the authority's virtual clock so pin records and
        health figures carry the request's deterministic timestamp.
        """
        if self.freshness is None:
            return
        self.freshness.vnow = now
        if self.freshness.forked:
            raise ForkDetected(
                f"controller refuses to serve: {self.freshness.fork_reason}"
            )

    @staticmethod
    def _error_response(exc: PesosError) -> Response:
        """Render an error, carrying any Retry-After degradation hint."""
        return Response(
            status=exc.status,
            error=str(exc),
            retry_after=getattr(exc, "retry_after", None),
        )

    def _pump_anti_entropy(self) -> None:
        """Run one repair pass every ``anti_entropy_interval`` requests.

        The synchronous stand-in for a background maintenance thread;
        repair failures never surface into the client request being
        served.
        """
        if self.requests_handled % self.config.anti_entropy_interval:
            return
        if not len(self.store.journal):
            return
        try:
            self.anti_entropy.run_once(
                max_keys=self.config.anti_entropy_batch
            )
        except PesosError:
            pass

    def health(self) -> dict:
        """Operator health report served at ``GET /_health``."""
        report = self.store.health_snapshot()
        report["requests_handled"] = self.requests_handled
        report["anti_entropy_runs"] = self.anti_entropy.runs
        if self.freshness is not None:
            report["freshness"] = self.freshness.snapshot()
            if self.freshness.forked:
                # A detected fork outranks drive health: the fleet may
                # be perfectly reachable and still be lying.
                report["status"] = "critical"
        return report

    def _count_transitions(self, events_before: int) -> None:
        """Estimate enclave transitions from this request's effects.

        Mirrors the benchmark cost model's syscall accounting
        (:meth:`repro.bench.model.SystemModel._derive_costs`): one
        send/recv pair on the client socket, one pair per backend drive
        operation, one syscall per SSD-tier access.
        """
        disk_ops = 0
        ssd_ops = 0
        for event in self.effects.events[events_before:]:
            kind = event[0]
            if kind in (DISK_READ, DISK_WRITE, DISK_DELETE):
                disk_ops += 1
            elif kind in (SSD_READ, SSD_WRITE):
                ssd_ops += 1
        self._m_transitions.labels("client_io").inc(2)
        if disk_ops:
            self._m_transitions.labels("drive_io").inc(2 * disk_ops)
        if ssd_ops:
            self._m_transitions.labels("ssd_io").inc(ssd_ops)

    def _derived_metrics(self):
        """Lazy gauges collected at scrape time."""
        yield MetricFamily(
            name="pesos_sessions_active",
            kind="gauge",
            help="Client sessions currently tracked.",
            samples=[Sample("pesos_sessions_active", {}, len(self.sessions))],
        )
        yield MetricFamily(
            name="pesos_enclave_cache_bytes",
            kind="gauge",
            help="Total bytes held across enclave cache regions.",
            samples=[
                Sample(
                    "pesos_enclave_cache_bytes",
                    {},
                    self.caches.memory_in_use(),
                )
            ],
        )
        tracker = self.async_tracker
        yield MetricFamily(
            name="pesos_async_results_discarded_total",
            kind="counter",
            help="Async result-buffer evictions, by entry state at "
            "eviction time.",
            samples=[
                Sample(
                    "pesos_async_results_discarded_total",
                    {"state": "pending"},
                    tracker.discarded_pending,
                ),
                Sample(
                    "pesos_async_results_discarded_total",
                    {"state": "done"},
                    tracker.discarded - tracker.discarded_pending,
                ),
            ],
        )
        if self.policy_engine is not None:
            stats = self.policy_engine.decisions.stats
            yield MetricFamily(
                name="pesos_policy_decision_cache_events_total",
                kind="counter",
                help="Decision-cache events on the policy fast path.",
                samples=[
                    Sample(
                        "pesos_policy_decision_cache_events_total",
                        {"event": event},
                        value,
                    )
                    for event, value in (
                        ("hit", stats.hits),
                        ("miss", stats.misses),
                        ("expired", stats.expired),
                        ("invalidated", stats.invalidations),
                    )
                ],
            )
        yield MetricFamily(
            name="pesos_async_completed_after_evict_total",
            kind="counter",
            help="Async operations whose finished result arrived after "
            "its buffer entry was evicted (ran, result expired).",
            samples=[
                Sample(
                    "pesos_async_completed_after_evict_total",
                    {},
                    tracker.completed_after_evict,
                )
            ],
        )

    def _dispatch(
        self, request: Request, session: Session, now: float
    ) -> Response:
        handler = getattr(self, f"_handle_{request.method}", None)
        if handler is None:
            raise RequestError(f"unhandled method {request.method!r}")
        return handler(request, session, now)

    def _handle_async(
        self, request: Request, session: Session, now: float
    ) -> Response:
        entry = self.async_tracker.begin(session.fingerprint)
        session.operations.append(entry.operation_id)
        # Execute now in the functional model; the benchmarks account
        # the deferred completion in virtual time.
        try:
            result = self._dispatch(request, session, now)
        except PesosError as exc:
            result = self._error_response(exc)
        if not self.async_tracker.complete(entry.operation_id, result):
            # The result buffer already evicted this entry: the write
            # ran (and may have been applied), but the client can never
            # learn its outcome — only re-submit.  Leave a span event so
            # acked-write audits can tell "ran, result expired" apart
            # from "never ran".
            with self.telemetry.span(
                "async.completed_after_evict",
                operation_id=entry.operation_id,
                status=result.status,
            ):
                pass
        return Response(status=202, operation_id=entry.operation_id)

    def _handle_status(
        self, request: Request, session: Session, now: float
    ) -> Response:
        entry = self.async_tracker.query(
            request.operation_id, session.fingerprint
        )
        if not entry.done:
            return Response(status=202, operation_id=entry.operation_id)
        inner: Response = entry.result
        inner.operation_id = entry.operation_id
        return inner

    # ------------------------------------------------------------------
    # Metadata and policy plumbing
    # ------------------------------------------------------------------

    def _get_meta(self, key: str) -> StoredMeta | None:
        meta = self.caches.get_meta(key)
        if meta is not None:
            return meta
        if self.ssd_cache is not None:
            blob = self.ssd_cache.get(f"m:{key}")
            if blob is not None:
                meta = StoredMeta.decode(blob)
                self.caches.put_meta(key, meta)
                return meta
        meta = self.store.read_meta(key)
        if meta is not None:
            self.caches.put_meta(key, meta)
            if self.ssd_cache is not None:
                self.ssd_cache.put(f"m:{key}", meta.encode())
        return meta

    def _load_policy(self, policy_id: str) -> CompiledPolicy | None:
        policy = self.caches.get_policy(policy_id)
        if policy is not None:
            return policy
        blob = self.store.read_policy(policy_id)
        if blob is None:
            return None
        policy = CompiledPolicy.from_bytes(blob)
        self.effects.record(POLICY_LOAD, len(blob))
        self.caches.put_policy(policy_id, policy)
        return policy

    def _build_context(
        self,
        operation: str,
        request: Request,
        session: Session,
        meta: StoredMeta | None,
        now: float,
        pending: VersionInfo | None = None,
    ) -> EvalContext:
        exists = meta is not None and meta.exists
        log_id = request.log_key or (request.key + self.config.log_suffix)
        return EvalContext(
            operation=operation,
            session_key=session.fingerprint,
            this_id=request.key if exists else None,
            log_id=log_id,
            request_version=request.version,
            objects=_ViewMap(self),
            pending=pending,
            certificates=list(request.certificates),
            key_registry=dict(self.authority_keys),
            now=now,
            nonce=session.nonce,
        )

    def _check_policy(
        self,
        operation: str,
        policy: CompiledPolicy | None,
        ctx: EvalContext,
    ) -> None:
        if policy is None or not self.config.enforce_policies:
            return
        engine = self.policy_engine
        if self.telemetry.enabled:
            started = _time.perf_counter()
            with self.telemetry.span("policy.check", operation=operation):
                decision = (
                    engine.evaluate(policy, operation, ctx)
                    if engine is not None
                    else self.interpreter.evaluate(policy, operation, ctx)
                )
            self._h_policy_check.observe(_time.perf_counter() - started)
        elif engine is not None:
            decision = engine.evaluate(policy, operation, ctx)
        else:
            decision = self.interpreter.evaluate(policy, operation, ctx)
        self.effects.record(POLICY_CHECK, decision.predicates_evaluated)
        if self.auditor is not None:
            self.auditor.record_decision(
                decision,
                policy_hash=policy.policy_hash(),
                session=ctx.session_key,
                key=ctx.this_id or ctx.log_id,
                vnow=ctx.now,
            )
        if not decision.granted:
            self._m_denied.labels(operation).inc()
            raise PolicyDenied(
                f"policy denies {operation} on {ctx.this_id or ctx.log_id}"
            )

    def prewarm_policy_batch(self, items: list, now: float) -> int:
        """Seed the decision cache for a batch of parsed read requests.

        ``items`` is ``(request, fingerprint)`` pairs.  Requests are
        grouped by governing policy and each group is evaluated in one
        pass over the compiled form (``FastPolicy.evaluate_batch``);
        the per-request path then serves the decisions from the cache,
        recording effects and audit records exactly as if it had
        evaluated inline.

        Strictly effect-free on misses: only requests whose session,
        metadata, and policy are already resident (peeked, not fetched
        — no effects events, no store reads) and whose policy never
        reads object state are warmed.  Everything else simply takes
        the normal path.
        """
        engine = self.policy_engine
        if engine is None or not self.config.enforce_policies:
            return 0
        groups: dict = {}
        for request, fingerprint in items:
            if request.method not in ("get", "attest"):
                continue
            session = self.sessions.peek(fingerprint, now=now)
            if session is None:
                continue
            meta = self.caches.keys.get(request.key)
            if meta is None or not meta.exists or not meta.policy_id:
                continue
            policy = self.caches.policies.get(meta.policy_id)
            if policy is None or not compiled_form(policy).cacheable:
                continue
            ctx = self._build_context("read", request, session, meta, now)
            groups.setdefault(id(policy), (policy, []))[1].append(ctx)
        warmed = 0
        for policy, contexts in groups.values():
            warmed += engine.prewarm(policy, "read", contexts)
        return warmed

    # ------------------------------------------------------------------
    # Object operations
    # ------------------------------------------------------------------

    def _handle_put(
        self,
        request: Request,
        session: Session,
        now: float,
        enforce: bool | None = None,
    ) -> Response:
        # ``enforce`` overrides config for this call only: transaction
        # apply-phase writes were policy-checked in phase 1 and must
        # not be re-checked — but toggling the *shared* config flag
        # would leak the bypass into requests that overlap the commit.
        if enforce is None:
            enforce = self.config.enforce_policies
        self.effects.record(COPY, len(request.value))
        meta = self._get_meta(request.key) or StoredMeta(key=request.key)

        # Resolve the policy that will be bound to the new version.
        bound_policy_id = request.policy_id or meta.policy_id
        bound_policy = None
        if bound_policy_id:
            bound_policy = self._load_policy(bound_policy_id)
            if bound_policy is None:
                raise RequestError(f"unknown policy {bound_policy_id!r}")
        bound_hash = bound_policy.policy_hash() if bound_policy else ""

        # The governing policy for this update is the object's current
        # policy when it exists; a brand-new object is governed by the
        # policy being attached (its creation clause, if any).
        governing = None
        if meta.exists and meta.policy_id:
            governing = self._load_policy(meta.policy_id)
        elif not meta.exists:
            governing = bound_policy

        if enforce and governing is not None:
            pending = VersionInfo.from_content(request.value, bound_hash)
            ctx = self._build_context(
                "update", request, session, meta, now, pending
            )
            self._check_policy("update", governing, ctx)

        meta.policy_id = bound_policy_id
        self.store.store_version(meta, request.value, bound_hash)
        if self.policy_engine is not None:
            # Store state changed: decisions cached under the old epoch
            # (none of which read object state, but the epoch is the
            # blanket invariant) become unreachable.
            self.policy_engine.advance_epoch()
        self.caches.put_meta(request.key, meta)
        self.caches.put_object(
            f"{request.key}@{meta.current_version}", request.value
        )
        if self.ssd_cache is not None:
            self.ssd_cache.put(
                f"{request.key}@{meta.current_version}", request.value
            )
            self.ssd_cache.put(f"m:{request.key}", meta.encode())
        return Response(
            status=200,
            version=meta.current_version,
            policy_id=bound_policy_id,
        )

    def _handle_get(
        self, request: Request, session: Session, now: float
    ) -> Response:
        meta = self._get_meta(request.key)
        if meta is None or not meta.exists:
            raise ObjectNotFound(f"no object {request.key!r}")
        if self.config.enforce_policies and meta.policy_id:
            policy = self._load_policy(meta.policy_id)
            ctx = self._build_context("read", request, session, meta, now)
            self._check_policy("read", policy, ctx)
        version = (
            request.version if request.version is not None
            else meta.current_version
        )
        if version not in meta.versions:
            raise ObjectNotFound(
                f"object {request.key!r} has no version {version}"
            )
        cache_key = f"{request.key}@{version}"
        value = self.caches.get_object(cache_key)
        if value is None and self.ssd_cache is not None:
            value = self.ssd_cache.get(cache_key)
        if value is None:
            expect = None
            if self.store._verifying():
                # The metadata record was proof-verified against the
                # pinned root, so its content hash anchors the value:
                # a replayed old copy of an overwritten slot decrypts
                # fine but cannot match.
                expect = meta.versions[version].content_hash
            value = self.store.read_value(
                request.key, version, expect_sha256=expect
            )
            if self.ssd_cache is not None:
                self.ssd_cache.put(cache_key, value)
        self.caches.put_object(cache_key, value)
        self.effects.record(COPY, len(value))
        return Response(
            status=200,
            value=value,
            version=version,
            policy_id=meta.policy_id,
        )

    def _handle_scan(
        self, request: Request, session: Session, now: float
    ) -> Response:
        """Range scan (YCSB-E): keys >= start key via ``GETKEYRANGE``.

        The store merges the ``m/`` ranges of every reachable drive;
        each returned object is then resolved through the normal
        metadata path — proof-verified when freshness is on — and
        policy-checked for ``read``.  Records whose policy denies the
        caller are *skipped*, not fatal: one locked-down object must
        not veto the rest of the range.  The response body is one
        ``key@version`` line per visible record.
        """
        count = min(request.scan_count, self.config.max_scan_count)
        keys = self.store.scan_keys(request.key, count)
        lines: list[str] = []
        denied = 0
        for key in keys:
            meta = self._get_meta(key)
            if meta is None or not meta.exists:
                # Deleted between the range listing and the meta read.
                continue
            if self.config.enforce_policies and meta.policy_id:
                policy = self._load_policy(meta.policy_id)
                sub = Request(method="get", key=key)
                ctx = self._build_context("read", sub, session, meta, now)
                try:
                    self._check_policy("read", policy, ctx)
                except PolicyDenied:
                    denied += 1
                    continue
            lines.append(f"{key}@{meta.current_version}")
        payload = "\n".join(lines).encode()
        self.effects.record(COPY, len(payload))
        return Response(
            status=200,
            value=payload,
            extra={"scanned": len(lines), "denied": denied},
        )

    def _handle_rmw(
        self, request: Request, session: Session, now: float
    ) -> Response:
        """Read-modify-write (YCSB-F): one atomic read+update cycle.

        Both halves run inside a single request, so the concurrent
        engine's exclusive per-key lock makes the cycle atomic against
        overlapping writers (LOCK_MODES maps ``rmw`` to ``"w"``).  The
        read half enforces the ``read`` policy and reports the version
        it observed; the write half is a normal policy-checked update
        of ``request.value``.
        """
        sub = Request(
            method="get",
            key=request.key,
            certificates=list(request.certificates),
            log_key=request.log_key,
        )
        current = self._handle_get(sub, session, now)
        updated = self._handle_put(request, session, now)
        updated.extra["read_version"] = current.version
        return updated

    def _handle_delete(
        self, request: Request, session: Session, now: float
    ) -> Response:
        meta = self._get_meta(request.key)
        if meta is None or not meta.exists:
            raise ObjectNotFound(f"no object {request.key!r}")
        if self.config.enforce_policies and meta.policy_id:
            policy = self._load_policy(meta.policy_id)
            ctx = self._build_context("delete", request, session, meta, now)
            self._check_policy("delete", policy, ctx)
        self.store.delete_object(meta)
        if self.policy_engine is not None:
            self.policy_engine.advance_epoch()
        self.caches.invalidate_meta(request.key)
        for version in meta.versions:
            self.caches.invalidate_object(f"{request.key}@{version}")
            if self.ssd_cache is not None:
                self.ssd_cache.invalidate(f"{request.key}@{version}")
        if self.ssd_cache is not None:
            self.ssd_cache.invalidate(f"m:{request.key}")
        return Response(status=200)

    def _handle_attest(
        self, request: Request, session: Session, now: float
    ) -> Response:
        """Signed statement binding key, version, content, and policy.

        Requires read permission on the object; the client verifies
        the statement offline against the controller's certificate,
        proving what the store held at attestation time.
        """
        if self.signing_keys is None:
            raise RequestError("controller has no attestation signing key")
        meta = self._get_meta(request.key)
        if meta is None or not meta.exists:
            raise ObjectNotFound(f"no object {request.key!r}")
        if self.config.enforce_policies and meta.policy_id:
            policy = self._load_policy(meta.policy_id)
            ctx = self._build_context("read", request, session, meta, now)
            self._check_policy("read", policy, ctx)
        version = (
            request.version if request.version is not None
            else meta.current_version
        )
        version_meta = meta.versions.get(version)
        if version_meta is None:
            raise ObjectNotFound(
                f"object {request.key!r} has no version {version}"
            )
        statement = attestation_statement(
            key=request.key,
            version=version,
            content_hash=version_meta.content_hash,
            policy_hash=version_meta.policy_hash,
            policy_id=meta.policy_id,
            timestamp=now,
        )
        signature = self.signing_keys.private_key.sign(statement)
        return Response(
            status=200,
            value=statement,
            version=version,
            extra={"signature": signature.hex()},
        )

    # -- admin / maintenance (operator API, not client-reachable) -------

    def scrub_object(self, key: str) -> list:
        """Audit all replicas of an object; see ObjectStore.scrub."""
        meta = self._get_meta(key)
        if meta is None or not meta.exists:
            raise ObjectNotFound(f"no object {key!r}")
        return self.store.scrub(meta)

    def repair_object(self, key: str) -> int:
        """Re-write damaged replicas; see ObjectStore.repair."""
        meta = self._get_meta(key)
        if meta is None or not meta.exists:
            raise ObjectNotFound(f"no object {key!r}")
        return self.store.repair(meta)

    # ------------------------------------------------------------------
    # Policy management
    # ------------------------------------------------------------------

    def _handle_put_policy(
        self, request: Request, session: Session, now: float
    ) -> Response:
        source = request.value.decode()
        if self.telemetry.enabled:
            started = _time.perf_counter()
            with self.telemetry.span("policy.compile", bytes=len(source)):
                policy = compile_source(source)
            self._h_policy_compile.observe(_time.perf_counter() - started)
        else:
            policy = compile_source(source)
        self.effects.record(POLICY_COMPILE, policy.size_bytes())
        policy_id = policy.policy_hash()
        self.store.write_policy(policy_id, policy.to_bytes())
        self.caches.put_policy(policy_id, policy)
        if self.policy_engine is not None:
            # Policy ids are content hashes, so a re-put can never alias
            # different text under a cached decision — but invalidating
            # here keeps the cache honest by construction rather than by
            # that global argument.
            self.policy_engine.invalidate_policy(policy_id)
            self.policy_engine.advance_epoch()
        response = Response(status=200, policy_id=policy_id)
        if self.config.verify_policies:
            # Static verification is advisory at PUT time: an
            # unsatisfiable or shadowed clause is legal, just almost
            # certainly not what the operator meant.  Surface it now,
            # on the response, instead of as a silent denial later.
            findings = verify_policy(policy)
            if findings:
                response.extra["warnings"] = warnings_payload(findings)
        return response

    def _handle_get_policy(
        self, request: Request, session: Session, now: float
    ) -> Response:
        policy_id = request.policy_id or request.key
        policy = self._load_policy(policy_id)
        if policy is None:
            raise ObjectNotFound(f"no policy {policy_id!r}")
        return Response(
            status=200, value=policy.to_bytes(), policy_id=policy_id
        )

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    def _handle_create_tx(
        self, request: Request, session: Session, now: float
    ) -> Response:
        tx = self.txns.create(session.fingerprint)
        session.transactions.add(tx.txid)
        return Response(status=200, txid=tx.txid)

    def _handle_add_read(
        self, request: Request, session: Session, now: float
    ) -> Response:
        tx = self.txns.get(request.txid, session.fingerprint)
        tx.add_read(request.key)
        return Response(status=200, txid=tx.txid)

    def _handle_add_write(
        self, request: Request, session: Session, now: float
    ) -> Response:
        tx = self.txns.get(request.txid, session.fingerprint)
        tx.add_write(request.key, request.value, request.policy_id)
        return Response(status=200, txid=tx.txid)

    def _handle_commit_tx(
        self, request: Request, session: Session, now: float
    ) -> Response:
        tx = self.txns.get(request.txid, session.fingerprint)
        tx.session, tx.now = session, now
        tx = self.txns.commit(tx)
        if tx.state == "aborted":
            return Response(status=409, txid=tx.txid, error=tx.error)
        return Response(status=200, txid=tx.txid)

    def _handle_abort_tx(
        self, request: Request, session: Session, now: float
    ) -> Response:
        tx = self.txns.get(request.txid, session.fingerprint)
        self.txns.abort(tx)
        return Response(status=200, txid=tx.txid)

    def _handle_tx_results(
        self, request: Request, session: Session, now: float
    ) -> Response:
        tx = self.txns.get(request.txid, session.fingerprint)
        if tx.state == "aborted":
            return Response(status=409, txid=tx.txid, error=tx.error)
        if tx.state != "committed":
            return Response(status=202, txid=tx.txid)
        payload = b"\n".join(
            key.encode() + b"=" + value
            for key, value in sorted(tx.results.items())
        )
        return Response(status=200, txid=tx.txid, value=payload)

    def _execute_transaction(self, tx: Transaction) -> dict:
        """Atomic execution: check every policy, then apply every write."""
        session, now = tx.session, tx.now
        results: dict[str, bytes] = {}

        # Phase 1: policy checks (and reads) with no side effects.
        staged = []
        for key in tx.reads:
            sub = Request(method="get", key=key)
            try:
                response = self._handle_get(sub, session, now)
            except PesosError as exc:
                raise TransactionError(f"read {key!r}: {exc}") from exc
            results[f"read:{key}"] = response.value
        for key, (value, policy_id) in tx.writes.items():
            sub = Request(
                method="put", key=key, value=value, policy_id=policy_id
            )
            meta = self._get_meta(key) or StoredMeta(key=key)
            bound_policy_id = policy_id or meta.policy_id
            bound = (
                self._load_policy(bound_policy_id) if bound_policy_id else None
            )
            bound_hash = bound.policy_hash() if bound else ""
            if meta.exists and meta.policy_id:
                governing = self._load_policy(meta.policy_id)
            else:
                governing = bound
            if self.config.enforce_policies and governing is not None:
                pending = VersionInfo.from_content(value, bound_hash)
                ctx = self._build_context(
                    "update", sub, session, meta, now, pending
                )
                try:
                    self._check_policy("update", governing, ctx)
                except PolicyDenied as exc:
                    raise TransactionError(str(exc)) from exc
            staged.append(sub)

        # Phase 2: apply all writes (policies already granted).
        for sub in staged:
            response = self._handle_put(sub, session, now, enforce=False)
            results[f"write:{sub.key}"] = f"v{response.version}".encode()
        return results

    # ------------------------------------------------------------------
    # Convenience API (used by examples and tests)
    # ------------------------------------------------------------------

    def put(
        self,
        fingerprint: str,
        key: str,
        value: bytes,
        now: float = 0.0,  # pesos: allow[det-default-clock]
        **kwargs,
    ) -> Response:
        return self.handle(
            Request(method="put", key=key, value=value, **kwargs),
            fingerprint,
            now=now,
        )

    def get(
        self, fingerprint: str, key: str, now: float = 0.0, **kwargs  # pesos: allow[det-default-clock]
    ) -> Response:
        return self.handle(
            Request(method="get", key=key, **kwargs), fingerprint, now=now
        )

    def delete(
        self, fingerprint: str, key: str, now: float = 0.0, **kwargs  # pesos: allow[det-default-clock]
    ) -> Response:
        return self.handle(
            Request(method="delete", key=key, **kwargs), fingerprint, now=now
        )

    def put_policy(self, fingerprint: str, source: str) -> Response:
        return self.handle(
            Request(method="put_policy", value=source.encode()), fingerprint
        )
