"""Client request and response model (the REST surface, §4.1).

A Pesos POST request carries at most four parameters — method, key,
value, policy id — plus optional version/certificate/async extras.
:func:`parse_http_request` and :func:`render_http_response` provide the
actual HTTP framing for clients that speak bytes; the controller and
all benchmarks work on the structured :class:`Request` directly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from urllib.parse import parse_qs, quote, unquote, urlparse

from repro.errors import RequestError

#: Methods the request handler accepts.
METHODS = frozenset(
    {
        "put",
        "get",
        "scan",
        "rmw",
        "delete",
        "put_policy",
        "get_policy",
        "attest",
        "status",
        "create_tx",
        "add_read",
        "add_write",
        "commit_tx",
        "abort_tx",
        "tx_results",
    }
)

#: Methods eligible for the asynchronous interface (§4.1: put, update,
#: delete, and transactions; GETs and session management are always
#: synchronous).
ASYNC_METHODS = frozenset({"put", "delete", "commit_tx"})


@dataclass
class Request:
    """One parsed client request."""

    method: str
    key: str = ""
    value: bytes = b""
    policy_id: str = ""
    version: int | None = None
    certificates: list = field(default_factory=list)
    asynchronous: bool = False
    txid: str = ""
    operation_id: str = ""
    log_key: str = ""
    #: Records one range scan covers (``scan`` requests only).
    scan_count: int = 0

    def validate(self) -> None:
        if self.method not in METHODS:
            raise RequestError(f"unknown method {self.method!r}")
        if self.asynchronous and self.method not in ASYNC_METHODS:
            raise RequestError(
                f"method {self.method!r} does not support the async interface"
            )
        if self.method in (
            "put", "get", "scan", "rmw", "delete", "attest",
            "add_read", "add_write",
        ):
            if not self.key:
                raise RequestError(f"{self.method} requires a key")
        if self.method == "scan" and self.scan_count < 1:
            raise RequestError("scan requires a positive record count")
        if self.method == "put_policy" and not self.value:
            raise RequestError("put_policy requires policy source as value")
        if self.method == "status" and not self.operation_id:
            raise RequestError("status requires an operation id")


@dataclass
class Response:
    """The controller's answer to one request."""

    status: int = 200
    value: bytes = b""
    error: str = ""
    version: int | None = None
    policy_id: str = ""
    operation_id: str = ""
    txid: str = ""
    extra: dict = field(default_factory=dict)
    #: Seconds the client should wait before retrying; rendered as a
    #: ``Retry-After`` header on 5xx responses (quorum degradation).
    retry_after: float | None = None

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


# ---------------------------------------------------------------------------
# HTTP framing
# ---------------------------------------------------------------------------

def parse_http_request(raw: bytes) -> Request:
    """Parse an HTTP/1.1 POST into a :class:`Request`.

    The URL path is ``/<method>/<key>``; query parameters carry policy
    id, version, async flag, txid, operation id and log key; the body
    is the value.
    """
    try:
        head, _, body = raw.partition(b"\r\n\r\n")
        request_line = head.split(b"\r\n", 1)[0].decode()
        verb, target, _version = request_line.split(" ", 2)
    except (ValueError, UnicodeDecodeError) as exc:
        raise RequestError(f"malformed HTTP request: {exc}") from exc
    if verb != "POST":
        raise RequestError(f"only POST is supported, got {verb}")
    parsed = urlparse(target)
    parts = [part for part in parsed.path.split("/") if part]
    if not parts:
        raise RequestError("missing method in URL path")
    method = parts[0]
    key = unquote("/".join(parts[1:])) if len(parts) > 1 else ""
    params = parse_qs(parsed.query)

    def single(name: str, default: str = "") -> str:
        values = params.get(name)
        return values[0] if values else default

    version_text = single("version")
    count_text = single("count")
    request = Request(
        method=method,
        key=key,
        value=body,
        policy_id=single("policy"),
        version=int(version_text) if version_text else None,
        asynchronous=single("async") in ("1", "true"),
        txid=single("txid"),
        operation_id=single("op"),
        log_key=unquote(single("log")),
        scan_count=int(count_text) if count_text else 0,
    )
    request.validate()
    return request


_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    409: "Conflict",
    410: "Gone",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def render_http_response(response: Response) -> bytes:
    """Serialize a :class:`Response` as HTTP/1.1 bytes."""
    reason = _REASONS.get(response.status, "Unknown")
    headers = [f"HTTP/1.1 {response.status} {reason}"]
    if response.version is not None:
        headers.append(f"X-Pesos-Version: {response.version}")
    if response.policy_id:
        headers.append(f"X-Pesos-Policy: {response.policy_id}")
    if response.operation_id:
        headers.append(f"X-Pesos-Operation: {response.operation_id}")
    if response.txid:
        headers.append(f"X-Pesos-Txid: {response.txid}")
    if response.error:
        headers.append(f"X-Pesos-Error: {quote(response.error)}")
    if response.retry_after is not None:
        headers.append(f"Retry-After: {response.retry_after:g}")
    if response.extra.get("warnings"):
        # Structured policy-verifier warnings, URL-quoted JSON: the
        # header survives the flat name/value transport unharmed.
        headers.append(
            "X-Pesos-Policy-Warnings: "
            + quote(json.dumps(response.extra["warnings"]), safe="")
        )
    if "scanned" in response.extra:
        headers.append(f"X-Pesos-Scanned: {response.extra['scanned']}")
    if "denied" in response.extra:
        headers.append(f"X-Pesos-Denied: {response.extra['denied']}")
    if "read_version" in response.extra:
        headers.append(
            f"X-Pesos-Read-Version: {response.extra['read_version']}"
        )
    body = response.value
    headers.append(f"Content-Length: {len(body)}")
    return ("\r\n".join(headers) + "\r\n\r\n").encode() + body


def build_http_request(request: Request) -> bytes:
    """Serialize a :class:`Request` as HTTP bytes (client side)."""
    query = []
    if request.policy_id:
        query.append(f"policy={request.policy_id}")
    if request.version is not None:
        query.append(f"version={request.version}")
    if request.scan_count:
        query.append(f"count={request.scan_count}")
    if request.asynchronous:
        query.append("async=1")
    if request.txid:
        query.append(f"txid={request.txid}")
    if request.operation_id:
        query.append(f"op={request.operation_id}")
    if request.log_key:
        query.append(f"log={quote(request.log_key, safe='')}")
    path = f"/{request.method}"
    if request.key:
        path += f"/{quote(request.key, safe='')}"
    if query:
        path += "?" + "&".join(query)
    head = (
        f"POST {path} HTTP/1.1\r\n"
        f"Content-Length: {len(request.value)}\r\n"
    )
    return head.encode() + b"\r\n" + request.value


def parse_http_response(raw: bytes) -> Response:
    """Parse HTTP response bytes back into a :class:`Response`."""
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode().split("\r\n")
    status = int(lines[0].split(" ", 2)[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(": ")
        headers[name] = value
    extra = {}
    if "X-Pesos-Policy-Warnings" in headers:
        extra["warnings"] = json.loads(
            unquote(headers["X-Pesos-Policy-Warnings"])
        )
    if "X-Pesos-Scanned" in headers:
        extra["scanned"] = int(headers["X-Pesos-Scanned"])
    if "X-Pesos-Denied" in headers:
        extra["denied"] = int(headers["X-Pesos-Denied"])
    if "X-Pesos-Read-Version" in headers:
        extra["read_version"] = int(headers["X-Pesos-Read-Version"])
    return Response(
        status=status,
        value=body,
        version=(
            int(headers["X-Pesos-Version"])
            if "X-Pesos-Version" in headers
            else None
        ),
        policy_id=headers.get("X-Pesos-Policy", ""),
        operation_id=headers.get("X-Pesos-Operation", ""),
        txid=headers.get("X-Pesos-Txid", ""),
        error=unquote(headers.get("X-Pesos-Error", "")),
        retry_after=(
            float(headers["Retry-After"]) if "Retry-After" in headers else None
        ),
        extra=extra,
    )
