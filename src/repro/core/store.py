"""The object store over Kinetic drives.

Key layout on the drives (all values encrypted before leaving the
controller, §2.2)::

    m/<key>              object metadata: current version, policy
                         binding, per-version size/hash records
    v/<key>/<version>    object content for one version
    p/<policy-hash>      compiled policy blobs

Placement (§4.5): a deterministic hash of the object key picks the
primary drive; replicas go on the following positions in the drive
list.  No replication metadata is kept anywhere.  On a drive failure,
reads fail over to the next replica in placement order.

Writes are write-through (§3.2): content first, then metadata, on
every replica.  A write reports success only if at least
``write_quorum`` replicas persisted it (default: every replica of the
placement); success below full replication journals the key for
anti-entropy repair, and falling below quorum raises
:class:`~repro.errors.ReplicationDegraded`.

Resilience: every replica interaction feeds a per-drive circuit
breaker (:mod:`repro.core.health`) so failover skips known-dead drives
instead of paying a timeout per request, and reads that fail over past
a missing or corrupt copy repair it inline from the healthy one.
"""

from __future__ import annotations

import hashlib
import secrets
import time as _time
from dataclasses import dataclass, field

from repro.core.antientropy import KIND_OBJECT, KIND_POLICY, DirtyJournal
from repro.core.effects import (
    DECRYPT,
    DISK_DELETE,
    DISK_READ,
    DISK_WRITE,
    ENCRYPT,
    NullRecorder,
)
from repro.core.freshness import object_label, policy_label, record_digest
from repro.core.health import STATE_CODES, HealthTracker
from repro.crypto.aead import StreamAead
from repro.errors import (
    ConfigurationError,
    CryptoError,
    DriveOffline,
    IntegrityError,
    KineticError,
    KineticNotFound,
    ReplicationDegraded,
    StaleReplica,
    TransientIOError,
)
from repro.policy.context import ObjectView, VersionInfo, parse_content_tuples
from repro.kinetic.protocol import decode_fields, encode_fields
from repro.telemetry import NULL_TELEMETRY


@dataclass
class VersionMeta:
    """Metadata for one stored version of an object."""

    version: int
    size: int
    content_hash: str
    policy_hash: str = ""


@dataclass
class StoredMeta:
    """Per-object metadata record (the ``m/<key>`` value)."""

    key: str
    current_version: int = -1  # -1 = no version written yet
    policy_id: str = ""
    versions: dict = field(default_factory=dict)  # version -> VersionMeta

    @property
    def exists(self) -> bool:
        return self.current_version >= 0

    def latest(self) -> VersionMeta | None:
        return self.versions.get(self.current_version)

    def weight(self) -> int:
        """Approximate in-memory size, for the key-cache budget."""
        return 96 + len(self.key) + 80 * len(self.versions)

    def encode(self) -> bytes:
        return encode_fields(
            {
                "key": self.key,
                "cv": self.current_version + 1,  # varints are unsigned
                "policy": self.policy_id,
                "versions": [
                    [m.version, m.size, m.content_hash, m.policy_hash]
                    for m in sorted(
                        self.versions.values(), key=lambda m: m.version
                    )
                ],
            }
        )

    @classmethod
    def decode(cls, blob: bytes) -> "StoredMeta":
        fields_ = decode_fields(blob)
        meta = cls(
            key=fields_["key"],
            current_version=int(fields_["cv"]) - 1,
            policy_id=fields_["policy"],
        )
        for version, size, content_hash, policy_hash in fields_["versions"]:
            meta.versions[int(version)] = VersionMeta(
                version=int(version),
                size=int(size),
                content_hash=content_hash,
                policy_hash=policy_hash,
            )
        return meta


def placement(key: str, num_drives: int, replication_factor: int) -> list[int]:
    """Deterministic drive placement: primary + following positions."""
    digest = hashlib.sha256(key.encode()).digest()
    primary = int.from_bytes(digest[:8], "big") % num_drives
    count = min(replication_factor, num_drives)
    return [(primary + offset) % num_drives for offset in range(count)]


class ObjectStore:
    """Encrypted, replicated object storage over Kinetic clients."""

    def __init__(
        self,
        clients: list,
        storage_key: bytes,
        replication_factor: int = 1,
        keep_history: bool = True,
        effects=None,
        aead_factory=StreamAead,
        version_metadata_window: int | None = None,
        telemetry=None,
        write_quorum: int | None = None,
        breaker_threshold: int = 3,
        breaker_cooldown_ops: int = 64,
    ):
        if not clients:
            raise ConfigurationError("store needs at least one drive client")
        self.clients = clients
        self.replication_factor = max(1, replication_factor)
        self.keep_history = keep_history
        effective_replicas = min(self.replication_factor, len(clients))
        #: Replicas that must persist a write before it is acknowledged.
        #: Defaults to every replica of the placement (the §3.2
        #: write-through contract); lower it to trade durability for
        #: availability during drive failures.
        self.write_quorum = (
            effective_replicas if write_quorum is None else write_quorum
        )
        if not 1 <= self.write_quorum <= effective_replicas:
            raise ConfigurationError(
                f"write_quorum {self.write_quorum} outside "
                f"[1, {effective_replicas}]"
            )
        self.health = HealthTracker(
            len(clients),
            threshold=breaker_threshold,
            cooldown_ops=breaker_cooldown_ops,
        )
        self.journal = DirtyJournal()
        #: Attached by the controller after fork detection succeeds;
        #: while set (and active), metadata reads verify against the
        #: pinned Merkle root and mutations pin a new root
        #: (:mod:`repro.core.freshness`).
        self.freshness = None
        #: When set, only the newest N versions keep per-version
        #: metadata (size/hash/policy-hash) in the hot ``m/`` record;
        #: older version *values* stay on disk but are no longer
        #: addressable through the API.  Bounds metadata growth for
        #: frequently rewritten versioned objects.
        self.version_metadata_window = version_metadata_window
        self.effects = effects or NullRecorder()
        self._aead = aead_factory(storage_key)
        self.telemetry = telemetry or NULL_TELEMETRY
        self._h_drive_op = self.telemetry.histogram(
            "pesos_drive_op_seconds",
            "Wall time of one backend drive operation (incl. failover).",
            ("op",),
        )
        self._m_drive_bytes = self.telemetry.counter(
            "pesos_drive_bytes_total",
            "Encrypted bytes exchanged with drives, by direction.",
            ("direction",),
        )
        self._m_replica_failures = self.telemetry.counter(
            "pesos_replica_failures_total",
            "Per-replica operation failures seen by the store, by kind.",
            ("kind",),
        )
        self._m_read_repair = self.telemetry.counter(
            "pesos_read_repair_total",
            "Replica blobs rewritten inline after a failed-over read.",
        )
        self._m_degraded = self.telemetry.counter(
            "pesos_replication_degraded_total",
            "Writes below full replication: acknowledged partial writes "
            "and quorum refusals.",
            ("outcome",),
        )
        if self.telemetry.enabled:
            self.telemetry.register_callback(self._health_metrics)

    # -- placement and failover -------------------------------------------

    def install_io_interceptor(self, interceptor) -> None:
        """Route every client's data ops through ``interceptor``.

        The concurrent request engine installs its preemption hook
        here so each drive ``get``/``put``/``delete`` suspends the
        calling green thread; ``None`` restores inline execution.
        Store code is oblivious either way — the synchronous call
        contract of :class:`repro.kinetic.client.KineticClient` holds
        whether the call ran inline or through the async interface.
        """
        for client in self.clients:
            client.interceptor = interceptor

    def _replicas(self, key: str) -> list[int]:
        return placement(key, len(self.clients), self.replication_factor)

    def _drive_id(self, index: int) -> str:
        drive = getattr(self.clients[index], "drive", None)
        return getattr(drive, "drive_id", f"drive-{index}")

    def _verifying(self) -> bool:
        """Whether reads/writes go through the freshness authority."""
        return self.freshness is not None and self.freshness.active

    def _read_with_failover(
        self,
        object_key: str,
        disk_key: bytes,
        aad: bytes | None = None,
        kind: str = KIND_OBJECT,
        expect_sha256: str | None = None,
    ) -> bytes:
        """Read one disk key, failing over across the placement.

        With ``aad`` set the sealed blob is also decrypted *per
        replica*, so a corrupt copy (AEAD failure) fails over exactly
        like an offline drive and the plaintext is returned.  Replicas
        that answered with missing or corrupt data are repaired inline
        from the first healthy copy; any failure journals the key for
        full anti-entropy repair.  Breaker-open drives are tried last,
        as a final resort only.

        When no replica serves the data, the error honours quorum
        semantics: an acknowledged write reached at least
        ``write_quorum`` replicas, so the key is *proven absent* only
        once ``len(replicas) - write_quorum + 1`` live drives answered
        "not found" — fewer than that (the rest unreachable) means the
        data may exist on a dead drive, and the read raises the drive
        error instead of claiming absence.  Corrupt copies prove
        existence, so they outrank absence.

        ``expect_sha256`` pins the plaintext to a known content hash
        (from the proof-verified metadata record): replicas serving a
        decryptable-but-different value — a replayed old copy of an
        overwritten slot — fail over like corrupt ones, and when no
        replica matches the read raises
        :class:`~repro.errors.StaleReplica` rather than serve rolled-
        back content.
        """
        instrumented = self.telemetry.enabled
        started = _time.perf_counter() if instrumented else 0.0
        drive_error: Exception | None = None
        corrupt_error: Exception | None = None
        stale_error: Exception | None = None
        not_found: Exception | None = None
        missing_count = 0
        with self.telemetry.span("kinetic.get", key=object_key):
            replicas = self._replicas(object_key)
            self.health.tick()
            preferred = [i for i in replicas if self.health.allow(i)]
            last_resort = [i for i in replicas if i not in preferred]
            data_failures: list[int] = []
            drive_failures: list[int] = []
            for index in preferred + last_resort:
                client = self.clients[index]
                try:
                    blob, _version = client.get(disk_key)
                except (DriveOffline, TransientIOError) as exc:
                    self.health.record_failure(index)
                    self._m_replica_failures.labels("offline").inc()
                    drive_failures.append(index)
                    drive_error = exc
                    continue
                except KineticNotFound as exc:
                    # The drive answered; the data is missing there.
                    self.health.record_success(index)
                    self._m_replica_failures.labels("missing").inc()
                    data_failures.append(index)
                    not_found = exc
                    missing_count += 1
                    continue
                self.health.record_success(index)
                if aad is not None:
                    try:
                        value = self._open(blob, aad)
                    except IntegrityError as exc:
                        self._m_replica_failures.labels("corrupt").inc()
                        data_failures.append(index)
                        corrupt_error = exc
                        continue
                else:
                    value = blob
                if expect_sha256 is not None and (
                    hashlib.sha256(value).hexdigest() != expect_sha256
                ):
                    self._m_replica_failures.labels("stale").inc()
                    if self.freshness is not None:
                        self.freshness.reject_stale(object_key)
                    data_failures.append(index)
                    stale_error = StaleReplica(
                        f"replica {index} serves stale content for "
                        f"{object_key!r}"
                    )
                    continue
                self.effects.record(DISK_READ, index, len(blob))
                if instrumented:
                    self._h_drive_op.labels("read").observe(
                        _time.perf_counter() - started
                    )
                    self._m_drive_bytes.labels("read").inc(len(blob))
                if data_failures or drive_failures:
                    self._read_repair(
                        object_key, disk_key, blob, data_failures,
                        drive_failures, kind,
                    )
                return value
        absence_quorum = len(replicas) - min(
            self.write_quorum, len(replicas)
        ) + 1
        if stale_error is not None:
            raise stale_error
        if corrupt_error is not None:
            raise corrupt_error
        if missing_count >= absence_quorum:
            raise not_found
        raise drive_error or not_found or KineticNotFound(object_key)

    def _read_repair(
        self,
        object_key: str,
        disk_key: bytes,
        blob: bytes,
        data_failures: list[int],
        drive_failures: list[int],
        kind: str,
    ) -> None:
        """Re-seed replicas that answered wrong; journal the rest."""
        self.journal.mark(kind, object_key, data_failures + drive_failures)
        for index in data_failures:
            try:
                self.clients[index].put(disk_key, blob, force=True)
            except KineticError:
                continue
            self.effects.record(DISK_WRITE, index, len(blob))
            self._m_read_repair.inc()

    def _write_replicas(self, object_key: str, disk_key: bytes,
                        blob: bytes, kind: str = KIND_OBJECT) -> int:
        """Write to every replica; succeed iff ``write_quorum`` held.

        Breaker-open drives are skipped up front (no timeout paid) but
        retried as a last resort if the quorum would otherwise fail.
        Acknowledged writes below full replication journal the key so
        anti-entropy can converge the lagging replicas; below quorum
        the write raises :class:`ReplicationDegraded` — and the key is
        still journaled when *some* replica took the write, because
        that replica now diverges from the rest.
        """
        instrumented = self.telemetry.enabled
        started = _time.perf_counter() if instrumented else 0.0
        wrote = 0
        missed: list[int] = []
        skipped: list[int] = []
        with self.telemetry.span(
            "kinetic.put", key=object_key, bytes=len(blob)
        ):
            replicas = self._replicas(object_key)
            self.health.tick()
            for index in replicas:
                if not self.health.allow(index):
                    skipped.append(index)
                    continue
                if self._put_replica(index, disk_key, blob):
                    wrote += 1
                else:
                    missed.append(index)
            quorum = min(self.write_quorum, len(replicas))
            if wrote < quorum and skipped:
                # Last resort: probe breaker-open drives rather than
                # refusing a write that could still meet quorum.
                still_skipped = []
                for index in skipped:
                    if wrote < quorum and self._put_replica(
                        index, disk_key, blob
                    ):
                        wrote += 1
                    else:
                        still_skipped.append(index)
                skipped = still_skipped
        if instrumented:
            self._h_drive_op.labels("write").observe(
                _time.perf_counter() - started
            )
            self._m_drive_bytes.labels("written").inc(wrote * len(blob))
        behind = missed + skipped
        if wrote < quorum:
            self._m_degraded.labels("refused").inc()
            if wrote:
                self.journal.mark(kind, object_key, behind)
            raise ReplicationDegraded(
                f"wrote {wrote}/{quorum} required replicas of "
                f"{object_key!r} ({len(replicas)} placed)"
            )
        if behind:
            self._m_degraded.labels("partial").inc()
            self.journal.mark(kind, object_key, behind)
        return wrote

    def _put_replica(self, index: int, disk_key: bytes, blob: bytes) -> bool:
        try:
            self.clients[index].put(disk_key, blob, force=True)
        except (DriveOffline, TransientIOError):
            self.health.record_failure(index)
            self._m_replica_failures.labels("offline").inc()
            return False
        self.health.record_success(index)
        self.effects.record(DISK_WRITE, index, len(blob))
        return True

    def _delete_all_replicas(self, object_key: str, disk_key: bytes) -> None:
        instrumented = self.telemetry.enabled
        started = _time.perf_counter() if instrumented else 0.0
        with self.telemetry.span("kinetic.delete", key=object_key):
            self.health.tick()
            for index in self._replicas(object_key):
                client = self.clients[index]
                try:
                    client.delete(disk_key, force=True)
                    self.health.record_success(index)
                    self.effects.record(DISK_DELETE, index, 0)
                except KineticNotFound:
                    self.health.record_success(index)
                except (DriveOffline, TransientIOError):
                    self.health.record_failure(index)
                    # Best effort: the unreachable replica keeps its
                    # copy, so journal the key for a later scrub.  A
                    # tombstone-free store cannot make partial deletes
                    # fully durable (see docs/resilience.md).
                    self.journal.mark(KIND_OBJECT, object_key, (index,))
        if instrumented:
            self._h_drive_op.labels("delete").observe(
                _time.perf_counter() - started
            )

    # -- authenticated freshness -------------------------------------------

    def scan_labels(self) -> list[str]:
        """Every metadata label present on any reachable drive.

        Used by :meth:`repro.core.freshness.FreshnessAuthority
        .bootstrap` to rebuild the authenticated dictionary at startup:
        the union over all drives of the ``m/`` and ``p/`` key ranges,
        paginated per the Kinetic ``GETKEYRANGE`` contract.  Offline
        drives are skipped — whether the missing coverage matters is
        decided by the root comparison, not here.
        """
        labels: set[str] = set()
        page = 200
        for index in range(len(self.clients)):
            client = self.clients[index]
            for prefix, to_label in (
                (b"m/", object_label),
                (b"p/", policy_label),
            ):
                cursor = prefix
                inclusive = True
                while True:
                    try:
                        keys = client.get_key_range(
                            start_key=cursor,
                            end_key=prefix + b"\xff" * 64,
                            max_returned=page,
                            start_inclusive=inclusive,
                        )
                    except KineticError:
                        break
                    for disk_key in keys:
                        labels.add(
                            to_label(disk_key[len(prefix):].decode())
                        )
                    if len(keys) < page:
                        break
                    cursor = keys[-1]
                    inclusive = False
        return sorted(labels)

    def scan_keys(self, start_key: str, count: int) -> list[str]:
        """Object keys >= ``start_key``, merged across the fleet.

        The Kinetic ``GETKEYRANGE`` path for YCSB-E range scans:
        placement hashes scatter adjacent object keys across drives,
        so one logical scan is the sorted union of every drive's
        ``m/`` range, paginated per the drive contract and truncated
        to ``count`` keys.  Offline drives are skipped — with
        replication their keys surface from the surviving replicas;
        without it the scan is best-effort over the reachable fleet
        (per-key reads still verify, a scan never vouches for
        freshness itself).
        """
        if count < 1:
            return []
        cursor_start = b"m/" + start_key.encode()
        end_key = b"m/" + b"\xff" * 64
        found: set[str] = set()
        page = max(count, 16)
        with self.telemetry.span(
            "kinetic.getkeyrange", key=start_key, count=count
        ):
            self.health.tick()
            for index in range(len(self.clients)):
                if not self.health.allow(index):
                    continue
                client = self.clients[index]
                cursor = cursor_start
                inclusive = True
                remaining = count
                while remaining > 0:
                    try:
                        keys = client.get_key_range(
                            start_key=cursor,
                            end_key=end_key,
                            max_returned=min(page, remaining),
                            start_inclusive=inclusive,
                        )
                    except (DriveOffline, TransientIOError):
                        self.health.record_failure(index)
                        self._m_replica_failures.labels("offline").inc()
                        break
                    except KineticError:
                        break
                    self.health.record_success(index)
                    self.effects.record(
                        DISK_READ, index, sum(len(k) for k in keys)
                    )
                    for disk_key in keys:
                        found.add(disk_key[2:].decode())
                    if len(keys) < min(page, remaining):
                        break
                    cursor = keys[-1]
                    inclusive = False
                    remaining -= len(keys)
        return sorted(found)[:count]

    def _read_verified(
        self,
        object_key: str,
        disk_key: bytes,
        aad: bytes,
        label: str,
        kind: str,
    ) -> bytes | None:
        """Read one metadata record, verified against the pinned root.

        The freshness authority proves what digest the record *must*
        have (or that it is absent — which short-circuits without any
        drive I/O): the first replica whose plaintext hashes to the
        pinned leaf wins, so a single reply suffices where the
        unverified path needs a quorum.  Replicas proving anything else
        are stale — failed over, re-seeded from the verified copy, and
        journaled.  A record pinned by an unsettled mutation accepts
        either side of the pending entry (crash-window availability).

        When every reachable replica is provably stale the read raises
        :class:`~repro.errors.StaleReplica`: serving would undo an
        acknowledged write.  All-unreachable raises the drive error,
        exactly like the unverified path.
        """
        expected, allowed = self.freshness.acceptable(label)
        if expected is None:
            # Proven absent: the pinned tree has no leaf for this
            # label, so no replica can legitimately hold a record.
            return None
        instrumented = self.telemetry.enabled
        started = _time.perf_counter() if instrumented else 0.0
        drive_error: Exception | None = None
        fallback: bytes | None = None
        fallback_digest: str | None = None
        behind: list[int] = []     # stale / missing / corrupt replicas
        unreachable: list[int] = []
        definitive_wrong = 0
        verified: bytes | None = None
        with self.telemetry.span("kinetic.get", key=object_key):
            replicas = self._replicas(object_key)
            self.health.tick()
            preferred = [i for i in replicas if self.health.allow(i)]
            last_resort = [i for i in replicas if i not in preferred]
            for index in preferred + last_resort:
                try:
                    blob, _version = self.clients[index].get(disk_key)
                except (DriveOffline, TransientIOError) as exc:
                    self.health.record_failure(index)
                    self._m_replica_failures.labels("offline").inc()
                    unreachable.append(index)
                    drive_error = exc
                    continue
                except KineticNotFound:
                    self.health.record_success(index)
                    self._m_replica_failures.labels("missing").inc()
                    behind.append(index)
                    definitive_wrong += 1
                    continue
                self.health.record_success(index)
                try:
                    plain = self._open(blob, aad)
                except IntegrityError:
                    self._m_replica_failures.labels("corrupt").inc()
                    behind.append(index)
                    definitive_wrong += 1
                    continue
                digest = self.freshness.leaf_digest(plain)
                if digest == expected:
                    self.effects.record(DISK_READ, index, len(blob))
                    if instrumented:
                        self._m_drive_bytes.labels("read").inc(len(blob))
                    verified = plain
                    break
                if digest in allowed:
                    # The other side of an unsettled mutation: keep it
                    # as a fallback but look for the pinned leaf first.
                    fallback, fallback_digest = plain, digest
                    continue
                self._m_replica_failures.labels("stale").inc()
                self.freshness.reject_stale(label)
                behind.append(index)
                definitive_wrong += 1
        if instrumented:
            self._h_drive_op.labels("read").observe(
                _time.perf_counter() - started
            )
        if verified is None and fallback is not None:
            verified = fallback
            expected = fallback_digest
        if verified is None:
            if definitive_wrong:
                raise StaleReplica(
                    f"every reachable replica of {object_key!r} is "
                    f"older than the pinned root (epoch "
                    f"{self.freshness.epoch})"
                )
            raise drive_error or KineticNotFound(object_key)
        if behind or unreachable:
            self.journal.mark(kind, object_key, behind + unreachable)
            sealed = self._seal(verified, aad)
            for index in behind:
                try:
                    self.clients[index].put(disk_key, sealed, force=True)
                except KineticError:
                    continue
                self.effects.record(DISK_WRITE, index, len(sealed))
                self._m_read_repair.inc()
        return verified

    def _pinned_write(self, label: str, digest: str | None, write) -> None:
        """Run one mutation under the write-ahead pin protocol.

        The new leaf is pinned *before* any replica sees the write
        (prepare), settled once the quorum acknowledged, and reverted
        — with the pending entry kept, since a minority replica may
        already hold the new record — when the write failed below
        quorum.
        """
        self.freshness.prepare(label, digest)
        try:
            write()
        # Deliberately broad: whatever the write failed with, the
        # pending pin must be rolled back before the error propagates
        # — an abandoned prepare would wedge every later mutation.
        # pesos: allow[core-no-swallow]
        except Exception:
            self.freshness.abort(label)
            raise
        self.freshness.settle(label)

    # -- health reporting --------------------------------------------------

    def health_snapshot(self) -> dict:
        """Per-drive breaker state plus quorum and journal figures.

        ``status`` is ``ok`` with a fully healthy fleet, ``degraded``
        while any drive is down or breaker-open, and ``critical`` once
        fewer healthy drives remain than ``write_quorum`` needs — at
        which point some writes *must* fail.
        """
        drives = []
        for index in range(len(self.clients)):
            drive = getattr(self.clients[index], "drive", None)
            entry = {"index": index, "drive_id": self._drive_id(index),
                     "online": bool(getattr(drive, "online", True))}
            entry.update(self.health.state_of(index).snapshot())
            drives.append(entry)
        unhealthy = sum(
            1 for d in drives if not d["online"] or d["breaker"] == "open"
        )
        healthy = len(drives) - unhealthy
        if unhealthy == 0:
            status = "ok"
        elif healthy >= self.write_quorum:
            status = "degraded"
        else:
            status = "critical"
        return {
            "status": status,
            "drives": drives,
            "replication_factor": min(
                self.replication_factor, len(self.clients)
            ),
            "write_quorum": self.write_quorum,
            "dirty_keys": len(self.journal),
        }

    def _health_metrics(self):
        from repro.telemetry.metrics import MetricFamily, Sample

        health_samples = []
        online_samples = []
        for index in range(len(self.clients)):
            drive_id = self._drive_id(index)
            state = self.health.state_of(index).state
            health_samples.append(
                Sample(
                    "pesos_drive_health",
                    {"drive": drive_id},
                    STATE_CODES[state],
                )
            )
            drive = getattr(self.clients[index], "drive", None)
            online_samples.append(
                Sample(
                    "pesos_drive_online",
                    {"drive": drive_id},
                    int(bool(getattr(drive, "online", True))),
                )
            )
        yield MetricFamily(
            name="pesos_drive_health",
            kind="gauge",
            help="Circuit-breaker state per drive "
                 "(0=closed, 1=half-open, 2=open).",
            samples=health_samples,
        )
        yield MetricFamily(
            name="pesos_drive_online",
            kind="gauge",
            help="Whether the drive reports online (1) or offline (0).",
            samples=online_samples,
        )
        yield MetricFamily(
            name="pesos_dirty_journal_keys",
            kind="gauge",
            help="Keys awaiting anti-entropy repair.",
            samples=[
                Sample("pesos_dirty_journal_keys", {}, len(self.journal))
            ],
        )

    # -- encryption ------------------------------------------------------------

    def _seal(self, blob: bytes, aad: bytes) -> bytes:
        nonce = secrets.token_bytes(12)
        self.effects.record(ENCRYPT, len(blob))
        return nonce + self._aead.seal(nonce, blob, aad)

    def _open(self, blob: bytes, aad: bytes) -> bytes:
        self.effects.record(DECRYPT, len(blob))
        return self._aead.open(blob[:12], blob[12:], aad)

    # -- metadata ---------------------------------------------------------------

    @staticmethod
    def meta_key(key: str) -> bytes:
        return b"m/" + key.encode()

    #: Version slot used when history is disabled: the value lives at a
    #: single key and updates overwrite in place (one drive PUT, no
    #: delete), like any plain key-value store.
    LATEST_SLOT = 0xFFFFFFFFFFFFFFFF

    @staticmethod
    def value_key(key: str, version: int) -> bytes:
        return b"v/" + key.encode() + b"/" + version.to_bytes(8, "big")

    def _slot(self, version: int) -> int:
        return version if self.keep_history else self.LATEST_SLOT

    @staticmethod
    def policy_key(policy_id: str) -> bytes:
        return b"p/" + policy_id.encode()

    def read_meta(self, key: str) -> StoredMeta | None:
        """Fetch object metadata, freshest-of-a-quorum; None when absent.

        The ``m/`` record is the only *mutable* key in the layout, so
        reading a single replica is only sound when the write quorum
        covers every replica.  With a relaxed quorum a lagging replica
        holds an older record that decrypts perfectly well — staleness
        is not corruption — so the store collects
        ``n - write_quorum + 1`` definitive replies (data or a clean
        "not found"), which is guaranteed to intersect every
        acknowledged write, and returns the newest version.  Stale and
        missing copies seen on the way are re-seeded inline and
        journaled.  With the default full write quorum this degenerates
        to the single-replica fast path.

        When drive failures leave fewer definitive replies than the
        freshness quorum needs, the read serves the newest *reachable*
        copy instead of failing — the operator who relaxed the write
        quorum chose availability — and the key stays journaled until
        anti-entropy can audit it against the recovered fleet.

        With a freshness authority attached the version-number quorum
        is replaced entirely by proof verification: the record must
        hash to the Merkle leaf pinned by the sealed monotonic counter
        (see :meth:`_read_verified`), which a replayed stale replica
        cannot satisfy no matter what version number it carries.
        """
        if self._verifying():
            plain = self._read_verified(
                key,
                self.meta_key(key),
                b"meta:" + key.encode(),
                object_label(key),
                KIND_OBJECT,
            )
            return None if plain is None else StoredMeta.decode(plain)
        disk_key = self.meta_key(key)
        aad = b"meta:" + key.encode()
        instrumented = self.telemetry.enabled
        started = _time.perf_counter() if instrumented else 0.0
        replicas = self._replicas(key)
        needed = len(replicas) - min(self.write_quorum, len(replicas)) + 1
        drive_error: Exception | None = None
        corrupt_error: Exception | None = None
        found: list[tuple[int, StoredMeta]] = []
        missing: list[int] = []   # live replicas answering "not found"
        unreachable: list[int] = []
        with self.telemetry.span("kinetic.get", key=key):
            self.health.tick()
            preferred = [i for i in replicas if self.health.allow(i)]
            last_resort = [i for i in replicas if i not in preferred]
            for index in preferred + last_resort:
                try:
                    blob, _version = self.clients[index].get(disk_key)
                except (DriveOffline, TransientIOError) as exc:
                    self.health.record_failure(index)
                    self._m_replica_failures.labels("offline").inc()
                    unreachable.append(index)
                    drive_error = exc
                    continue
                except KineticNotFound:
                    self.health.record_success(index)
                    missing.append(index)
                    continue
                self.health.record_success(index)
                try:
                    plain = self._open(blob, aad)
                except IntegrityError as exc:
                    self._m_replica_failures.labels("corrupt").inc()
                    unreachable.append(index)
                    corrupt_error = exc
                    continue
                self.effects.record(DISK_READ, index, len(blob))
                if instrumented:
                    self._m_drive_bytes.labels("read").inc(len(blob))
                found.append((index, StoredMeta.decode(plain)))
                if len(found) + len(missing) >= needed:
                    break
        if instrumented:
            self._h_drive_op.labels("read").observe(
                _time.perf_counter() - started
            )
        if not found:
            # Absence needs the same quorum as freshness; otherwise the
            # data may live on a replica we could not reach.
            if len(missing) >= needed:
                return None
            if corrupt_error is not None:
                raise corrupt_error
            if drive_error is not None:
                raise drive_error
            return None
        # found but fewer definitive replies than ``needed``: not
        # provably fresh; fall through and serve the newest reachable
        # copy (``unreachable`` is non-empty, so the key is journaled).
        freshest = max(found, key=lambda item: item[1].current_version)[1]
        stale = [
            index for index, meta in found
            if meta.current_version < freshest.current_version
        ]
        behind = stale + missing + unreachable
        if behind:
            self.journal.mark(KIND_OBJECT, key, behind)
            sealed = self._seal(freshest.encode(), aad)
            for index in stale + missing:
                try:
                    self.clients[index].put(disk_key, sealed, force=True)
                except KineticError:
                    continue
                self.effects.record(DISK_WRITE, index, len(sealed))
                self._m_read_repair.inc()
        return freshest

    def write_meta(self, meta: StoredMeta) -> None:
        plain = meta.encode()
        blob = self._seal(plain, b"meta:" + meta.key.encode())
        if self._verifying():
            self._pinned_write(
                object_label(meta.key),
                record_digest(plain),
                lambda: self._write_replicas(
                    meta.key, self.meta_key(meta.key), blob
                ),
            )
            return
        self._write_replicas(meta.key, self.meta_key(meta.key), blob)

    # -- object content ------------------------------------------------------------

    def read_value(
        self, key: str, version: int, expect_sha256: str | None = None
    ) -> bytes:
        slot = self._slot(version)
        aad = b"val:" + key.encode() + b":" + str(slot).encode()
        with self.telemetry.span("store.read_value", key=key,
                                 version=version):
            return self._read_with_failover(
                key, self.value_key(key, slot), aad=aad,
                expect_sha256=expect_sha256,
            )

    def write_value(self, key: str, version: int, value: bytes) -> None:
        slot = self._slot(version)
        aad = b"val:" + key.encode() + b":" + str(slot).encode()
        blob = self._seal(value, aad)
        self._write_replicas(key, self.value_key(key, slot), blob)

    def delete_value(self, key: str, version: int) -> None:
        self._delete_all_replicas(key, self.value_key(key, self._slot(version)))

    # -- whole-object operations -----------------------------------------------------

    def store_version(
        self, meta: StoredMeta, value: bytes, policy_hash: str
    ) -> StoredMeta:
        """Write the next version of an object (content then metadata)."""
        new_version = meta.current_version + 1
        with self.telemetry.span(
            "store.store_version",
            key=meta.key,
            version=new_version,
            bytes=len(value),
        ):
            return self._store_version(meta, value, policy_hash, new_version)

    def _store_version(
        self, meta: StoredMeta, value: bytes, policy_hash: str,
        new_version: int,
    ) -> StoredMeta:
        self.write_value(meta.key, new_version, value)
        old = meta.latest()
        meta.current_version = new_version
        meta.versions[new_version] = VersionMeta(
            version=new_version,
            size=len(value),
            content_hash=hashlib.sha256(value).hexdigest(),
            policy_hash=policy_hash,
        )
        window = self.version_metadata_window
        if window is not None and len(meta.versions) > window:
            for stale in sorted(meta.versions)[:-window]:
                del meta.versions[stale]
        self.write_meta(meta)
        if not self.keep_history and old is not None:
            # The new value overwrote the latest slot in place; only
            # the metadata record needs pruning.
            del meta.versions[old.version]
        return meta

    def delete_object(self, meta: StoredMeta) -> None:
        """Remove every version and the metadata record."""
        if self._verifying():
            self._pinned_write(
                object_label(meta.key), None,
                lambda: self._delete_versions_and_meta(meta),
            )
            return
        self._delete_versions_and_meta(meta)

    def _delete_versions_and_meta(self, meta: StoredMeta) -> None:
        slots_seen = set()
        for version in list(meta.versions):
            slot = self._slot(version)
            if slot in slots_seen:
                continue
            slots_seen.add(slot)
            self.delete_value(meta.key, version)
        self._delete_all_replicas(meta.key, self.meta_key(meta.key))

    # -- integrity maintenance ---------------------------------------------------

    def scrub(self, meta: StoredMeta) -> list:
        """Audit every replica of every version of an object.

        Reads each replica directly (no failover), decrypts, and
        compares the content hash against the metadata record.
        Returns ``(version, drive_index, status)`` tuples with status
        ``ok`` / ``missing`` / ``corrupt`` / ``offline``.
        """
        report = []
        for version_meta in meta.versions.values():
            slot = self._slot(version_meta.version)
            disk_key = self.value_key(meta.key, slot)
            aad = b"val:" + meta.key.encode() + b":" + str(slot).encode()
            for index in self._replicas(meta.key):
                client = self.clients[index]
                try:
                    blob, _version = client.get(disk_key)
                    value = self._open(blob, aad)
                    digest = hashlib.sha256(value).hexdigest()
                    status = (
                        "ok" if digest == version_meta.content_hash
                        else "corrupt"
                    )
                except (DriveOffline, TransientIOError):
                    status = "offline"
                except KineticNotFound:
                    status = "missing"
                except CryptoError:
                    # Tampered blobs surface as AEAD failures (bad tag,
                    # truncated frame); anything else should propagate.
                    status = "corrupt"
                report.append((version_meta.version, index, status))
        return report

    def repair(self, meta: StoredMeta) -> int:
        """Re-write missing/corrupt replicas from a healthy copy.

        Used after a failed drive returns (anti-entropy).  Returns the
        number of replica blobs rewritten; versions with no healthy
        replica at all are left untouched (unrecoverable).
        """
        report = self.scrub(meta)
        healthy: dict[int, int] = {}
        for version, drive_index, status in report:
            if status == "ok" and version not in healthy:
                healthy[version] = drive_index
        repaired = 0
        for version, drive_index, status in report:
            if status in ("ok", "offline"):
                continue
            source = healthy.get(version)
            if source is None:
                continue
            slot = self._slot(version)
            disk_key = self.value_key(meta.key, slot)
            aad = b"val:" + meta.key.encode() + b":" + str(slot).encode()
            blob, _version = self.clients[source].get(disk_key)
            value = self._open(blob, aad)
            resealed = self._seal(value, aad)
            try:
                self.clients[drive_index].put(disk_key, resealed, force=True)
                self.effects.record(DISK_WRITE, drive_index, len(resealed))
                repaired += 1
            except (DriveOffline, TransientIOError):
                continue
        # Ensure the metadata record is present everywhere too.
        self.write_meta(meta)
        return repaired

    # -- policies -----------------------------------------------------------------------

    def write_policy(self, policy_id: str, blob: bytes) -> None:
        aad = b"policy:" + policy_id.encode()
        sealed = self._seal(blob, aad)
        if self._verifying():
            self._pinned_write(
                policy_label(policy_id),
                record_digest(blob),
                lambda: self._write_replicas(
                    policy_id, self.policy_key(policy_id), sealed,
                    kind=KIND_POLICY,
                ),
            )
            return
        self._write_replicas(
            policy_id, self.policy_key(policy_id), sealed, kind=KIND_POLICY
        )

    def read_policy(self, policy_id: str) -> bytes | None:
        if self._verifying():
            return self._read_verified(
                policy_id,
                self.policy_key(policy_id),
                b"policy:" + policy_id.encode(),
                policy_label(policy_id),
                KIND_POLICY,
            )
        try:
            return self._read_with_failover(
                policy_id,
                self.policy_key(policy_id),
                aad=b"policy:" + policy_id.encode(),
                kind=KIND_POLICY,
            )
        except KineticNotFound:
            return None


class StoreBackedView(ObjectView):
    """An :class:`ObjectView` that lazily reads content for ``objSays``.

    Size/hash/policy-hash come from metadata without touching content;
    content tuples are fetched (through the object cache) only when a
    policy actually inspects them — and cached, per §4.2 ("we cache
    objects accessed during policy evaluation").
    """

    def __init__(self, meta: StoredMeta, store: ObjectStore, cache=None):
        super().__init__(
            object_id=meta.key, current_version=meta.current_version
        )
        self._meta = meta
        self._store = store
        self._cache = cache
        self._infos: dict[int, VersionInfo] = {}

    def info(self, version: int) -> VersionInfo | None:
        if version in self._infos:
            return self._infos[version]
        version_meta = self._meta.versions.get(version)
        if version_meta is None:
            return None
        info = _LazyVersionInfo(
            size=version_meta.size,
            content_hash=version_meta.content_hash,
            policy_hash=version_meta.policy_hash,
            loader=self._load_content,
            version=version,
        )
        self._infos[version] = info
        return info

    def _load_content(self, version: int) -> bytes:
        cache_key = f"{self.object_id}@{version}"
        if self._cache is not None:
            cached = self._cache.get_object(cache_key)
            if cached is not None:
                return cached
        expect = None
        version_meta = self._meta.versions.get(version)
        if version_meta is not None and self._store._verifying():
            # The metadata record came through proof verification, so
            # its content hash anchors the value read too.
            expect = version_meta.content_hash
        value = self._store.read_value(
            self.object_id, version, expect_sha256=expect
        )
        if self._cache is not None:
            self._cache.put_object(cache_key, value)
        return value


class _LazyVersionInfo(VersionInfo):
    """VersionInfo whose tuple facts load on first access."""

    def __init__(self, size, content_hash, policy_hash, loader, version):
        super().__init__(
            size=size, content_hash=content_hash, policy_hash=policy_hash
        )
        self._loader = loader
        self._version = version
        self._loaded = False

    @property
    def tuples(self):  # type: ignore[override]
        if not self._loaded:
            self._tuples = parse_content_tuples(self._loader(self._version))
            self._loaded = True
        return self._tuples

    @tuples.setter
    def tuples(self, value):
        self._tuples = value
        self._loaded = True
