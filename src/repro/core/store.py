"""The object store over Kinetic drives.

Key layout on the drives (all values encrypted before leaving the
controller, §2.2)::

    m/<key>              object metadata: current version, policy
                         binding, per-version size/hash records
    v/<key>/<version>    object content for one version
    p/<policy-hash>      compiled policy blobs

Placement (§4.5): a deterministic hash of the object key picks the
primary drive; replicas go on the following positions in the drive
list.  No replication metadata is kept anywhere.  On a drive failure,
reads fail over to the next replica in placement order.

Writes are write-through (§3.2): content first, then metadata, on
every replica.  A write reports success only if every replica of the
placement persisted it.
"""

from __future__ import annotations

import hashlib
import secrets
import time as _time
from dataclasses import dataclass, field

from repro.core.effects import (
    DECRYPT,
    DISK_DELETE,
    DISK_READ,
    DISK_WRITE,
    ENCRYPT,
    NullRecorder,
)
from repro.crypto.aead import StreamAead
from repro.errors import ConfigurationError, DriveOffline, KineticNotFound
from repro.policy.context import ObjectView, VersionInfo, parse_content_tuples
from repro.kinetic.protocol import decode_fields, encode_fields
from repro.telemetry import NULL_TELEMETRY


@dataclass
class VersionMeta:
    """Metadata for one stored version of an object."""

    version: int
    size: int
    content_hash: str
    policy_hash: str = ""


@dataclass
class StoredMeta:
    """Per-object metadata record (the ``m/<key>`` value)."""

    key: str
    current_version: int = -1  # -1 = no version written yet
    policy_id: str = ""
    versions: dict = field(default_factory=dict)  # version -> VersionMeta

    @property
    def exists(self) -> bool:
        return self.current_version >= 0

    def latest(self) -> VersionMeta | None:
        return self.versions.get(self.current_version)

    def weight(self) -> int:
        """Approximate in-memory size, for the key-cache budget."""
        return 96 + len(self.key) + 80 * len(self.versions)

    def encode(self) -> bytes:
        return encode_fields(
            {
                "key": self.key,
                "cv": self.current_version + 1,  # varints are unsigned
                "policy": self.policy_id,
                "versions": [
                    [m.version, m.size, m.content_hash, m.policy_hash]
                    for m in sorted(
                        self.versions.values(), key=lambda m: m.version
                    )
                ],
            }
        )

    @classmethod
    def decode(cls, blob: bytes) -> "StoredMeta":
        fields_ = decode_fields(blob)
        meta = cls(
            key=fields_["key"],
            current_version=int(fields_["cv"]) - 1,
            policy_id=fields_["policy"],
        )
        for version, size, content_hash, policy_hash in fields_["versions"]:
            meta.versions[int(version)] = VersionMeta(
                version=int(version),
                size=int(size),
                content_hash=content_hash,
                policy_hash=policy_hash,
            )
        return meta


def placement(key: str, num_drives: int, replication_factor: int) -> list[int]:
    """Deterministic drive placement: primary + following positions."""
    digest = hashlib.sha256(key.encode()).digest()
    primary = int.from_bytes(digest[:8], "big") % num_drives
    count = min(replication_factor, num_drives)
    return [(primary + offset) % num_drives for offset in range(count)]


class ObjectStore:
    """Encrypted, replicated object storage over Kinetic clients."""

    def __init__(
        self,
        clients: list,
        storage_key: bytes,
        replication_factor: int = 1,
        keep_history: bool = True,
        effects=None,
        aead_factory=StreamAead,
        version_metadata_window: int | None = None,
        telemetry=None,
    ):
        if not clients:
            raise ConfigurationError("store needs at least one drive client")
        self.clients = clients
        self.replication_factor = max(1, replication_factor)
        self.keep_history = keep_history
        #: When set, only the newest N versions keep per-version
        #: metadata (size/hash/policy-hash) in the hot ``m/`` record;
        #: older version *values* stay on disk but are no longer
        #: addressable through the API.  Bounds metadata growth for
        #: frequently rewritten versioned objects.
        self.version_metadata_window = version_metadata_window
        self.effects = effects or NullRecorder()
        self._aead = aead_factory(storage_key)
        self.telemetry = telemetry or NULL_TELEMETRY
        self._h_drive_op = self.telemetry.histogram(
            "pesos_drive_op_seconds",
            "Wall time of one backend drive operation (incl. failover).",
            ("op",),
        )
        self._m_drive_bytes = self.telemetry.counter(
            "pesos_drive_bytes_total",
            "Encrypted bytes exchanged with drives, by direction.",
            ("direction",),
        )

    # -- placement and failover -------------------------------------------

    def _replicas(self, key: str) -> list[int]:
        return placement(key, len(self.clients), self.replication_factor)

    def _read_with_failover(self, object_key: str, disk_key: bytes) -> bytes:
        instrumented = self.telemetry.enabled
        started = _time.perf_counter() if instrumented else 0.0
        last_error: Exception | None = None
        with self.telemetry.span("kinetic.get", key=object_key):
            for index in self._replicas(object_key):
                client = self.clients[index]
                try:
                    value, _version = client.get(disk_key)
                    self.effects.record(DISK_READ, index, len(value))
                    if instrumented:
                        self._h_drive_op.labels("read").observe(
                            _time.perf_counter() - started
                        )
                        self._m_drive_bytes.labels("read").inc(len(value))
                    return value
                except DriveOffline as exc:
                    last_error = exc
                    continue
        raise last_error or KineticNotFound(object_key)

    def _write_all_replicas(self, object_key: str, disk_key: bytes,
                            blob: bytes) -> None:
        instrumented = self.telemetry.enabled
        started = _time.perf_counter() if instrumented else 0.0
        wrote = 0
        with self.telemetry.span(
            "kinetic.put", key=object_key, bytes=len(blob)
        ):
            for index in self._replicas(object_key):
                client = self.clients[index]
                try:
                    client.put(disk_key, blob, force=True)
                    self.effects.record(DISK_WRITE, index, len(blob))
                    wrote += 1
                except DriveOffline:
                    continue
        if instrumented:
            self._h_drive_op.labels("write").observe(
                _time.perf_counter() - started
            )
            self._m_drive_bytes.labels("written").inc(wrote * len(blob))
        if wrote == 0:
            raise DriveOffline(
                f"no replica of {object_key!r} accepted the write"
            )

    def _delete_all_replicas(self, object_key: str, disk_key: bytes) -> None:
        instrumented = self.telemetry.enabled
        started = _time.perf_counter() if instrumented else 0.0
        with self.telemetry.span("kinetic.delete", key=object_key):
            for index in self._replicas(object_key):
                client = self.clients[index]
                try:
                    client.delete(disk_key, force=True)
                    self.effects.record(DISK_DELETE, index, 0)
                except (DriveOffline, KineticNotFound):
                    continue
        if instrumented:
            self._h_drive_op.labels("delete").observe(
                _time.perf_counter() - started
            )

    # -- encryption ------------------------------------------------------------

    def _seal(self, blob: bytes, aad: bytes) -> bytes:
        nonce = secrets.token_bytes(12)
        self.effects.record(ENCRYPT, len(blob))
        return nonce + self._aead.seal(nonce, blob, aad)

    def _open(self, blob: bytes, aad: bytes) -> bytes:
        self.effects.record(DECRYPT, len(blob))
        return self._aead.open(blob[:12], blob[12:], aad)

    # -- metadata ---------------------------------------------------------------

    @staticmethod
    def meta_key(key: str) -> bytes:
        return b"m/" + key.encode()

    #: Version slot used when history is disabled: the value lives at a
    #: single key and updates overwrite in place (one drive PUT, no
    #: delete), like any plain key-value store.
    LATEST_SLOT = 0xFFFFFFFFFFFFFFFF

    @staticmethod
    def value_key(key: str, version: int) -> bytes:
        return b"v/" + key.encode() + b"/" + version.to_bytes(8, "big")

    def _slot(self, version: int) -> int:
        return version if self.keep_history else self.LATEST_SLOT

    @staticmethod
    def policy_key(policy_id: str) -> bytes:
        return b"p/" + policy_id.encode()

    def read_meta(self, key: str) -> StoredMeta | None:
        """Fetch object metadata from disk; None when absent."""
        try:
            blob = self._read_with_failover(key, self.meta_key(key))
        except KineticNotFound:
            return None
        return StoredMeta.decode(self._open(blob, b"meta:" + key.encode()))

    def write_meta(self, meta: StoredMeta) -> None:
        blob = self._seal(meta.encode(), b"meta:" + meta.key.encode())
        self._write_all_replicas(meta.key, self.meta_key(meta.key), blob)

    # -- object content ------------------------------------------------------------

    def read_value(self, key: str, version: int) -> bytes:
        slot = self._slot(version)
        aad = b"val:" + key.encode() + b":" + str(slot).encode()
        with self.telemetry.span("store.read_value", key=key,
                                 version=version):
            blob = self._read_with_failover(key, self.value_key(key, slot))
            return self._open(blob, aad)

    def write_value(self, key: str, version: int, value: bytes) -> None:
        slot = self._slot(version)
        aad = b"val:" + key.encode() + b":" + str(slot).encode()
        blob = self._seal(value, aad)
        self._write_all_replicas(key, self.value_key(key, slot), blob)

    def delete_value(self, key: str, version: int) -> None:
        self._delete_all_replicas(key, self.value_key(key, self._slot(version)))

    # -- whole-object operations -----------------------------------------------------

    def store_version(
        self, meta: StoredMeta, value: bytes, policy_hash: str
    ) -> StoredMeta:
        """Write the next version of an object (content then metadata)."""
        new_version = meta.current_version + 1
        with self.telemetry.span(
            "store.store_version",
            key=meta.key,
            version=new_version,
            bytes=len(value),
        ):
            return self._store_version(meta, value, policy_hash, new_version)

    def _store_version(
        self, meta: StoredMeta, value: bytes, policy_hash: str,
        new_version: int,
    ) -> StoredMeta:
        self.write_value(meta.key, new_version, value)
        old = meta.latest()
        meta.current_version = new_version
        meta.versions[new_version] = VersionMeta(
            version=new_version,
            size=len(value),
            content_hash=hashlib.sha256(value).hexdigest(),
            policy_hash=policy_hash,
        )
        window = self.version_metadata_window
        if window is not None and len(meta.versions) > window:
            for stale in sorted(meta.versions)[:-window]:
                del meta.versions[stale]
        self.write_meta(meta)
        if not self.keep_history and old is not None:
            # The new value overwrote the latest slot in place; only
            # the metadata record needs pruning.
            del meta.versions[old.version]
        return meta

    def delete_object(self, meta: StoredMeta) -> None:
        """Remove every version and the metadata record."""
        slots_seen = set()
        for version in list(meta.versions):
            slot = self._slot(version)
            if slot in slots_seen:
                continue
            slots_seen.add(slot)
            self.delete_value(meta.key, version)
        self._delete_all_replicas(meta.key, self.meta_key(meta.key))

    # -- integrity maintenance ---------------------------------------------------

    def scrub(self, meta: StoredMeta) -> list:
        """Audit every replica of every version of an object.

        Reads each replica directly (no failover), decrypts, and
        compares the content hash against the metadata record.
        Returns ``(version, drive_index, status)`` tuples with status
        ``ok`` / ``missing`` / ``corrupt`` / ``offline``.
        """
        report = []
        for version_meta in meta.versions.values():
            slot = self._slot(version_meta.version)
            disk_key = self.value_key(meta.key, slot)
            aad = b"val:" + meta.key.encode() + b":" + str(slot).encode()
            for index in self._replicas(meta.key):
                client = self.clients[index]
                try:
                    blob, _version = client.get(disk_key)
                    value = self._open(blob, aad)
                    digest = hashlib.sha256(value).hexdigest()
                    status = (
                        "ok" if digest == version_meta.content_hash
                        else "corrupt"
                    )
                except DriveOffline:
                    status = "offline"
                except KineticNotFound:
                    status = "missing"
                except Exception:  # noqa: BLE001 - tamper shows as decrypt fail
                    status = "corrupt"
                report.append((version_meta.version, index, status))
        return report

    def repair(self, meta: StoredMeta) -> int:
        """Re-write missing/corrupt replicas from a healthy copy.

        Used after a failed drive returns (anti-entropy).  Returns the
        number of replica blobs rewritten; versions with no healthy
        replica at all are left untouched (unrecoverable).
        """
        report = self.scrub(meta)
        healthy: dict[int, int] = {}
        for version, drive_index, status in report:
            if status == "ok" and version not in healthy:
                healthy[version] = drive_index
        repaired = 0
        for version, drive_index, status in report:
            if status in ("ok", "offline"):
                continue
            source = healthy.get(version)
            if source is None:
                continue
            slot = self._slot(version)
            disk_key = self.value_key(meta.key, slot)
            aad = b"val:" + meta.key.encode() + b":" + str(slot).encode()
            blob, _version = self.clients[source].get(disk_key)
            value = self._open(blob, aad)
            resealed = self._seal(value, aad)
            try:
                self.clients[drive_index].put(disk_key, resealed, force=True)
                self.effects.record(DISK_WRITE, drive_index, len(resealed))
                repaired += 1
            except DriveOffline:
                continue
        # Ensure the metadata record is present everywhere too.
        self.write_meta(meta)
        return repaired

    # -- policies -----------------------------------------------------------------------

    def write_policy(self, policy_id: str, blob: bytes) -> None:
        aad = b"policy:" + policy_id.encode()
        sealed = self._seal(blob, aad)
        self._write_all_replicas(policy_id, self.policy_key(policy_id), sealed)

    def read_policy(self, policy_id: str) -> bytes | None:
        try:
            blob = self._read_with_failover(
                policy_id, self.policy_key(policy_id)
            )
        except KineticNotFound:
            return None
        return self._open(blob, b"policy:" + policy_id.encode())


class StoreBackedView(ObjectView):
    """An :class:`ObjectView` that lazily reads content for ``objSays``.

    Size/hash/policy-hash come from metadata without touching content;
    content tuples are fetched (through the object cache) only when a
    policy actually inspects them — and cached, per §4.2 ("we cache
    objects accessed during policy evaluation").
    """

    def __init__(self, meta: StoredMeta, store: ObjectStore, cache=None):
        super().__init__(
            object_id=meta.key, current_version=meta.current_version
        )
        self._meta = meta
        self._store = store
        self._cache = cache
        self._infos: dict[int, VersionInfo] = {}

    def info(self, version: int) -> VersionInfo | None:
        if version in self._infos:
            return self._infos[version]
        version_meta = self._meta.versions.get(version)
        if version_meta is None:
            return None
        info = _LazyVersionInfo(
            size=version_meta.size,
            content_hash=version_meta.content_hash,
            policy_hash=version_meta.policy_hash,
            loader=self._load_content,
            version=version,
        )
        self._infos[version] = info
        return info

    def _load_content(self, version: int) -> bytes:
        cache_key = f"{self.object_id}@{version}"
        if self._cache is not None:
            cached = self._cache.get_object(cache_key)
            if cached is not None:
                return cached
        value = self._store.read_value(self.object_id, version)
        if self._cache is not None:
            self._cache.put_object(cache_key, value)
        return value


class _LazyVersionInfo(VersionInfo):
    """VersionInfo whose tuple facts load on first access."""

    def __init__(self, size, content_hash, policy_hash, loader, version):
        super().__init__(
            size=size, content_hash=content_hash, policy_hash=policy_hash
        )
        self._loader = loader
        self._version = version
        self._loaded = False

    @property
    def tuples(self):  # type: ignore[override]
        if not self._loaded:
            self._tuples = parse_content_tuples(self._loader(self._version))
            self._loaded = True
        return self._tuples

    @tuples.setter
    def tuples(self, value):
        self._tuples = value
        self._loaded = True
