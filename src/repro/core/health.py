"""Per-drive health tracking: a consecutive-failure circuit breaker.

Without this, every request whose placement includes a dead drive pays
that drive's timeout before failing over.  The tracker remembers which
replicas have been failing and lets the store skip them outright:

- ``closed``  — healthy, requests flow normally.
- ``open``    — too many consecutive failures; skip this drive.
- ``half-open`` — the cooldown elapsed; exactly one probe request is
  let through.  Success closes the breaker, failure re-opens it.

The breaker is clocked on the store's *operation counter*, not wall
time, so behaviour is deterministic under test and in virtual-time
benchmarks: a breaker opened at op N allows its half-open probe at op
``N + cooldown_ops``.
"""

from __future__ import annotations

from dataclasses import dataclass

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: Numeric encoding used by the ``pesos_drive_health`` gauge.
STATE_CODES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


@dataclass
class DriveHealth:
    """Breaker state and counters for one drive."""

    state: str = CLOSED
    consecutive_failures: int = 0
    opened_at: int = 0
    successes: int = 0
    failures: int = 0
    probes: int = 0

    def snapshot(self) -> dict:
        return {
            "breaker": self.state,
            "consecutive_failures": self.consecutive_failures,
            "successes": self.successes,
            "failures": self.failures,
            "probes": self.probes,
        }


class HealthTracker:
    """Circuit breakers for a fleet of drives, indexed like clients.

    The drive list can grow at runtime (the hash-ring rebalancer
    appends clients), so lookups auto-extend.
    """

    def __init__(
        self, num_drives: int, threshold: int = 3, cooldown_ops: int = 64
    ):
        self.threshold = max(1, threshold)
        self.cooldown_ops = max(1, cooldown_ops)
        self.clock = 0
        self._drives = [DriveHealth() for _ in range(num_drives)]

    def __len__(self) -> int:
        return len(self._drives)

    def _get(self, index: int) -> DriveHealth:
        while index >= len(self._drives):
            self._drives.append(DriveHealth())
        return self._drives[index]

    def state_of(self, index: int) -> DriveHealth:
        return self._get(index)

    def tick(self) -> int:
        """Advance the breaker clock (one store-level operation)."""
        self.clock += 1
        return self.clock

    def allow(self, index: int) -> bool:
        """Whether the store should send this drive a request now."""
        health = self._get(index)
        if health.state == CLOSED:
            return True
        if (
            health.state == OPEN
            and self.clock - health.opened_at >= self.cooldown_ops
        ):
            health.state = HALF_OPEN
            health.probes += 1
            return True  # this caller is the probe
        return False

    def record_success(self, index: int) -> None:
        health = self._get(index)
        health.successes += 1
        health.consecutive_failures = 0
        health.state = CLOSED

    def record_failure(self, index: int) -> None:
        health = self._get(index)
        health.failures += 1
        health.consecutive_failures += 1
        if (
            health.state == HALF_OPEN
            or health.consecutive_failures >= self.threshold
        ):
            health.state = OPEN
            health.opened_at = self.clock

    def open_count(self) -> int:
        return sum(1 for h in self._drives if h.state == OPEN)

    def snapshot(self) -> list[dict]:
        return [h.snapshot() for h in self._drives]
