"""Concurrent request execution engine (§4.6).

Pesos gets its throughput from Scone's userspace threading: requests
overlap drive I/O instead of idling through it.  This module puts that
mechanism on the request path.  Each incoming request runs as a green
thread on the :class:`~repro.sgx.scheduler.UserspaceScheduler`; every
Kinetic drive operation becomes a *preemption point* — the green
thread submits the call on the async syscall interface and yields, so
other requests proceed while the I/O is "in flight".

Three pieces make this work without rewriting the synchronous request
path into generators:

- :class:`ThreadTask` adapts a plain callable to the generator protocol
  (``send``/``throw``) by running it on a private OS thread with strict
  rendezvous handoff: exactly one thread — the scheduler's or one
  task's — is ever runnable, so execution stays fully deterministic
  and the existing scheduler drives it unchanged.
- A client-level *interceptor* (:attr:`KineticClient.interceptor`)
  routes ``get``/``put``/``delete`` through the engine: on a task
  thread the call suspends and travels through
  :class:`~repro.sgx.syscalls.AsyncSyscallInterface`; on the main
  thread (bootstrap, load phases) it executes inline.
- Per-key request locks (:class:`repro.core.locks.KeyLockTable`) keep
  overlapping non-transactional operations on the same object
  serializable, and cooperate with the VLL transaction queue.

Dispatch order is driven by a seeded
:class:`~repro.sgx.scheduler.DispatchSchedule`, so any interleaving a
test or benchmark observes can be reproduced from its seed; adjacent
drive operations to the same drive are coalesced into batched
submissions before the untrusted worker runs.

Virtual time: the engine charges a simple overlap-aware cost model
(:class:`EngineTiming`) as it runs — drives serve their per-round
batches in parallel, enclave CPU is serial — so benchmarks can compare
concurrent against sequential execution in virtual seconds while the
functional behaviour stays bit-exact.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from queue import SimpleQueue
from typing import Any

from repro.analysis.sanitizer import NULL_SANITIZER
from repro.core.admission import AdmissionController
from repro.core.request import Request, Response
from repro.errors import ConfigurationError
from repro.sgx.scheduler import DispatchSchedule, UserspaceScheduler
from repro.sgx.syscalls import AsyncSyscallInterface

#: Lock mode per request method: ``"w"`` exclusive, ``"r"`` shared,
#: absent = no request lock (transactions go through VLL; policies are
#: content-addressed, so concurrent identical writes are idempotent).
LOCK_MODES = {
    "put": "w",
    "delete": "w",
    "rmw": "w",
    "get": "r",
    "scan": "r",
    "attest": "r",
}


class ThreadTask:
    """Generator-protocol adapter running a callable on its own thread.

    The scheduler calls :meth:`send`/:meth:`throw` exactly as it would
    on a generator; the wrapped callable receives a :class:`TaskHandle`
    whose :meth:`~TaskHandle.emit` plays the role of ``yield`` — and
    works at *any* call depth, which is the whole point: the store's
    drive calls can suspend the request without the request path being
    generator-shaped.  Handoff is a strict rendezvous over two queues,
    so at most one side is ever running.
    """

    def __init__(self, fn):
        self._fn = fn
        self._to_task: SimpleQueue = SimpleQueue()
        self._from_task: SimpleQueue = SimpleQueue()
        self._thread = threading.Thread(target=self._main, daemon=True)
        self._started = False

    def _main(self) -> None:
        try:
            result = self._fn(TaskHandle(self))
        except BaseException as exc:  # noqa: BLE001 - re-raised in send()
            self._from_task.put(("raise", exc))
        else:
            self._from_task.put(("return", result))

    # -- generator protocol (scheduler side) ------------------------------

    def send(self, value: Any) -> Any:
        if not self._started:
            self._started = True
            self._thread.start()
        else:
            self._to_task.put(("value", value))
        return self._receive()

    def throw(self, error: BaseException) -> Any:
        if not self._started:
            raise error
        self._to_task.put(("error", error))
        return self._receive()

    def _receive(self) -> Any:
        kind, payload = self._from_task.get()
        if kind == "yield":
            return payload
        if kind == "return":
            stop = StopIteration()
            stop.value = payload
            raise stop
        raise payload


class TaskHandle:
    """The task side of the rendezvous: ``emit`` == ``yield``."""

    def __init__(self, task: ThreadTask):
        self._task = task

    def emit(self, value: Any) -> Any:
        """Yield ``value`` to the scheduler; returns what it sends back."""
        self._task._from_task.put(("yield", value))
        kind, payload = self._task._to_task.get()
        if kind == "error":
            raise payload
        return payload


@dataclass
class EngineTiming:
    """Virtual-time cost model for engine runs.

    Enclave CPU is serial (charged per dispatched segment); drives
    serve their per-round batches in parallel with a fixed submission
    overhead per *batched* submission — which is what coalescing saves
    — plus a per-operation service time.
    """

    cpu_per_segment: float = 12e-6
    drive_base: float = 200e-6
    drive_per_op: float = 60e-6
    syscall_submit: float = 1.1e-6


@dataclass
class _Item:
    """One submitted request plus its bookkeeping."""

    index: int
    request: Request
    fingerprint: str
    now: float
    response: Response | None = None
    tid: int | None = None
    #: Virtual time at which the item entered the admission queue;
    #: completion latency (queue wait included) is measured from here.
    vqueued: float = 0.0


@dataclass
class EngineStats:
    requests: int = 0
    rounds: int = 0
    drive_ops: int = 0
    batched_submissions: int = 0
    coalesced_calls: int = 0
    lock_spins: int = 0
    virtual_seconds: float = 0.0
    context_switches: int = 0
    shed_requests: int = 0

    def snapshot(self) -> dict:
        return dict(self.__dict__)


class ConcurrentEngine:
    """Runs batches of requests concurrently over one controller.

    Usage::

        engine = ConcurrentEngine(controller, seed=7, hardware_threads=8)
        for request, fingerprint in batch:
            engine.submit(request, fingerprint)
        responses = engine.run()        # submission order
        engine.close()

    ``seed`` fixes the dispatch schedule: two engines built with the
    same seed over equivalent controllers produce byte-identical
    orderings (see :meth:`trace_bytes`).  ``hardware_threads`` is the
    worker count — how many green threads advance per scheduling round
    (1 degenerates to sequential execution with identical accounting,
    which is the benchmark baseline).
    """

    def __init__(
        self,
        controller,
        seed: int = 0,
        hardware_threads: int = 8,
        max_inflight: int = 32,
        timing: EngineTiming | None = None,
        coalesce: bool = True,
        sanitizer=None,
        admission: AdmissionController | None = None,
    ):
        if max_inflight < 1:
            raise ConfigurationError("need at least one in-flight request")
        self.controller = controller
        self.seed = seed
        #: Overload protection (see :mod:`repro.core.admission`).  When
        #: set, submitted requests pass its rate limiter and bounded
        #: queue, and its AIMD limiter caps how many green threads each
        #: scheduling round dispatches.  Shed requests answer 429/503
        #: with Retry-After and never reach the controller.
        self.admission = admission
        if admission is not None:
            if admission.sessions is None:
                admission.sessions = controller.sessions
            admission.bind_telemetry(controller.telemetry)
        #: Concurrency-sanitizer hooks (see :mod:`repro.analysis`).
        #: The default shared no-op keeps the hot path free: one
        #: attribute lookup and a no-op call per event site.
        self.sanitizer = NULL_SANITIZER if sanitizer is None else sanitizer
        self.timing = timing or EngineTiming()
        self.coalesce = coalesce
        self.syscalls = AsyncSyscallInterface(
            num_slots=max(64, 2 * max_inflight),
            telemetry=getattr(controller, "telemetry", None),
        )
        self.syscalls.register_handler("drive_op", self._exec_drive_op)
        self.schedule = DispatchSchedule(seed)
        self.scheduler = UserspaceScheduler(
            self.syscalls,
            hardware_threads=hardware_threads,
            schedule=self.schedule,
            before_worker=self._before_worker,
        )
        self.max_inflight = max_inflight
        self.stats = EngineStats()
        #: Completion order: ``(index, method, key, status, version)``
        #: per finished request — the engine's linearization record.
        self.completion_log: list[tuple] = []
        self._items: list[_Item] = []
        self._pending: deque[_Item] = deque()
        self._round_latencies: list[float] = []
        self._local = threading.local()
        self._locks = controller.request_locks
        self._clients = list(controller.store.clients)
        self._client_index = {
            id(client): i for i, client in enumerate(self._clients)
        }
        self._last_switches = 0
        controller.store.install_io_interceptor(self._io_interceptor)
        # Fan the sanitizer out to every instrumented layer this engine
        # drives; close() restores the shared no-op.
        self.scheduler.sanitizer = self.sanitizer
        self._locks.sanitizer = self.sanitizer
        txns = getattr(controller, "txns", None)
        if txns is not None:
            txns.sanitizer = self.sanitizer

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Uninstall the drive interceptor (engine no longer usable)."""
        self.controller.store.install_io_interceptor(None)
        self.scheduler.sanitizer = NULL_SANITIZER
        self._locks.sanitizer = NULL_SANITIZER
        txns = getattr(self.controller, "txns", None)
        if txns is not None:
            txns.sanitizer = NULL_SANITIZER

    def __enter__(self) -> "ConcurrentEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- submission and execution -----------------------------------------

    def submit(
        self, request: Request, fingerprint: str = "fp", now: float = 0.0  # pesos: allow[det-default-clock]
    ) -> int:
        """Queue one request; returns its index into :meth:`run`'s result."""
        item = _Item(
            index=len(self._items),
            request=request,
            fingerprint=fingerprint,
            now=now,
        )
        self._items.append(item)
        item.vqueued = self.stats.virtual_seconds
        if self.admission is None:
            self._pending.append(item)
            return item.index
        decision = self.admission.offer(
            item, request, fingerprint, now, vnow=item.vqueued
        )
        if not decision.admitted:
            item.response = decision.to_response()
            self.stats.shed_requests += 1
            self._record_slo(item)
        self._collect_shed()
        return item.index

    def run(self, max_rounds: int = 1_000_000) -> list[Response]:
        """Execute everything submitted; responses in submission order."""
        for _ in range(max_rounds):
            self._admit()
            alive = self.scheduler.step()
            self.stats.rounds += 1
            if self.admission is not None and self._round_latencies:
                # One AIMD observation per round: the mean virtual
                # latency (queue wait included) of this round's
                # completions.  Deterministic — both the sample set and
                # the fold order follow the dispatch schedule.
                samples = self._round_latencies
                self.admission.observe(sum(samples) / len(samples))
                self._round_latencies = []
            if not alive and not self._pending and not self._queued():
                break
        else:
            raise ConfigurationError(
                "engine did not converge (livelock?)"
            )
        self._surface_failures()
        return [item.response for item in self._items]

    def _queued(self) -> int:
        return 0 if self.admission is None else len(self.admission.queue)

    def run_batch(
        self,
        requests: list,
        fingerprint: str = "fp",
        now: float = 0.0,  # pesos: allow[det-default-clock]
    ) -> list[Response]:
        """Convenience: submit a batch of requests and run it."""
        for entry in requests:
            if isinstance(entry, tuple):
                request, fp = entry
            else:
                request, fp = entry, fingerprint
            self.submit(request, fp, now=now)
        return self.run()

    def _admit(self) -> None:
        """Keep up to ``max_inflight`` requests live on the scheduler.

        With an admission controller attached, the effective width is
        the smaller of ``max_inflight`` and the AIMD limit, and the
        dispatch order (plus any queue-time shedding) is the admission
        queue's.
        """
        if self.admission is None:
            while self._pending and self.scheduler.alive < self.max_inflight:
                self._spawn(self._pending.popleft())
            return
        width = min(self.max_inflight, self.admission.limiter.limit)
        budget = width - self.scheduler.alive
        if budget > 0:
            vnow = self.stats.virtual_seconds
            for item in self.admission.dispatch(vnow, budget):
                self._spawn(item)
        self._collect_shed()

    def _spawn(self, item: _Item) -> None:
        task = ThreadTask(
            lambda handle, item=item: self._serve(handle, item)
        )
        item.tid = self.scheduler.spawn(task).tid
        self.stats.requests += 1

    def _collect_shed(self) -> None:
        """Answer queue entries the admission controller shed."""
        for item, decision in self.admission.take_shed():
            item.response = decision.to_response()
            self.stats.shed_requests += 1
            self._record_slo(item)

    def _record_slo(self, item: _Item) -> None:
        """Fold one finished (or shed) request into the SLO budgets.

        Latency is virtual queue-to-completion time — the same signal
        the AIMD limiter consumes — so SLO burn under the engine is a
        pure function of the dispatch schedule.
        """
        vnow = self.stats.virtual_seconds
        self.controller.telemetry.record_request(
            item.request.method,
            item.response is not None and item.response.ok,
            max(0.0, vnow - item.vqueued),
            vnow,
        )

    def _surface_failures(self) -> None:
        """Map green-thread crashes to 500 responses, in order."""
        threads = self.scheduler._threads
        for item in self._items:
            if item.response is None and item.tid is not None:
                thread = threads.get(item.tid)
                error = thread.error if thread is not None else None
                item.response = Response(
                    status=500,
                    error=f"request thread failed: {error!r}",
                )

    # -- one request, as a green thread ------------------------------------

    def _lock_mode(self, request: Request) -> str | None:
        """Request-lock mode for one request (``"w"``/``"r"``/None).

        A seam on purpose: the sanitizer regression test overrides this
        to drop the locks and prove the race detector fires.
        """
        return LOCK_MODES.get(request.method)

    def _serve(self, handle: TaskHandle, item: _Item) -> Response:
        self._local.handle = handle
        request = item.request
        mode = self._lock_mode(request)
        exclusive = mode == "w"
        if mode is not None and request.key:
            # Spin-yield acquisition: on contention, park for one
            # scheduling round and retry.  Requests hold at most one
            # key lock, so there is no hold-and-wait and no deadlock.
            while not self._locks.try_acquire(request.key, exclusive):
                self.stats.lock_spins += 1
                handle.emit("yield")
        try:
            response = self.controller.handle(
                request, item.fingerprint, item.now
            )
        finally:
            if mode is not None and request.key:
                self._locks.release(request.key, exclusive)
        item.response = response
        if self.admission is not None:
            self._round_latencies.append(
                max(0.0, self.stats.virtual_seconds - item.vqueued)
            )
        self._record_slo(item)
        self.completion_log.append(
            (
                item.index,
                request.method,
                request.key or "",
                response.status,
                -1 if response.version is None else response.version,
            )
        )
        return response

    # -- drive I/O as preemption points ------------------------------------

    def _io_interceptor(self, client, op: str, args: tuple, kwargs: dict):
        handle = getattr(self._local, "handle", None)
        if handle is None:
            # Main thread (bootstrap, load phase, admin): inline.
            return client.direct(op, *args, **kwargs)  # pesos: allow[core-drive-io]
        if self.sanitizer.enabled and args:
            # The disk key is the shared state two requests can clobber;
            # report the access on the issuing thread, at submission
            # time, while the shadow state still attributes to it.
            self.sanitizer.on_access(args[0], op in ("put", "delete"))
        index = self._client_index[id(client)]
        return handle.emit(
            ("syscall", "drive_op", (index, op, args, kwargs))
        )

    def _exec_drive_op(self, index: int, op: str, args: tuple, kwargs: dict):
        """Untrusted-worker side: execute the real drive call."""
        self.stats.drive_ops += 1
        return self._clients[index].direct(op, *args, **kwargs)  # pesos: allow[core-drive-io]

    # -- per-round hook: coalescing + virtual time -------------------------

    def _drive_of(self, request) -> int:
        return request.args[0]

    def _before_worker(self) -> None:
        ops_per_drive: dict[int, int] = {}
        for slot_index in self.syscalls._submission:
            slot = self.syscalls._slots[slot_index]
            ops_per_drive[slot.args[0]] = (
                ops_per_drive.get(slot.args[0], 0) + 1
            )
        if self.coalesce:
            self.syscalls.coalesce_submissions(self._drive_of)
            submissions = len(ops_per_drive)
        else:
            submissions = sum(ops_per_drive.values())
        self.stats.batched_submissions = self.syscalls.batched_submissions
        self.stats.coalesced_calls = self.syscalls.coalesced_calls

        # Virtual time for this round: serial enclave CPU for every
        # dispatched segment and syscall submission, then the drives
        # serve their round batches in parallel with one another.  A
        # coalesced batch pays the drive's base cost once; uncoalesced
        # traffic pays it per operation.
        timing = self.timing
        switches = self.scheduler.total_context_switches
        segments = switches - self._last_switches
        self._last_switches = switches
        self.stats.context_switches = switches
        drive_seconds = 0.0
        for count in ops_per_drive.values():
            base = timing.drive_base * (1 if self.coalesce else count)
            drive_seconds = max(
                drive_seconds, base + count * timing.drive_per_op
            )
        self.stats.virtual_seconds += (
            segments * timing.cpu_per_segment
            + submissions * timing.syscall_submit
            + drive_seconds
        )

    # -- reproducibility ----------------------------------------------------

    @property
    def virtual_time(self) -> float:
        return self.stats.virtual_seconds

    def dispatch_trace(self) -> list[tuple[str, int]]:
        return list(self.scheduler.dispatch_log)

    def trace_bytes(self) -> bytes:
        """Canonical byte record of everything order-dependent.

        Two runs with the same seed over equivalent controllers must
        produce identical bytes; a differing seed almost surely will
        not.  This is the artifact the determinism acceptance test
        compares.
        """
        lines = [
            "|".join(str(part) for part in entry)
            for entry in self.completion_log
        ]
        lines.append("--dispatch--")
        lines.extend(
            f"{event}:{tid}" for event, tid in self.scheduler.dispatch_log
        )
        if self.admission is not None:
            # Admission decisions are part of the replayable schedule:
            # a same-seed run must shed the same requests with the same
            # Retry-After hints at the same decision points.
            lines.append("--admission--")
            lines.extend(self.admission.trace_lines())
        return "\n".join(lines).encode()
