"""Authenticated freshness over object/policy metadata.

Pesos encrypts and authenticates every blob it stores, so a malicious
cloud cannot *forge* data — but it can still *replay* it: serve a
stale-but-correctly-sealed replica of an object's ``m/`` record
(rolling an acknowledged write back), or restore the whole fleet from
an old snapshot across a controller restart (forking history).  The
drives' version numbers are no defense: they live inside the replayed
blobs and are exactly as old as the data.

This module closes that hole with the mechanism of authenticated
key-value stores rooted in an enclave:

- A **sparse Merkle tree** (:class:`MerkleTree`) over every metadata
  label — ``o/<key>`` for object records, ``p/<id>`` for policy blobs
  — whose leaves are SHA-256 digests of the *plaintext* records.  The
  tree lives in enclave memory and supports membership and absence
  proofs against its root.
- A **sealed, monotonically-advancing pin**: every metadata mutation
  advances a :class:`repro.sgx.enclave.MonotonicCounter` and persists
  ``seal(root_hash ‖ counter ‖ pending)`` to untrusted storage
  (:class:`PinStore`).  The hardware counter survives restarts, so a
  replayed sealed pin (correctly sealed, but stale) is caught by a
  counter mismatch.
- **Verified reads**: the store asks :meth:`FreshnessAuthority
  .acceptable` for the pinned leaf digest (a proof generated from the
  tree and verified against the pinned root); replicas whose record
  digest does not match are rejected as stale, failed over, and
  repaired.  Absence is proven the same way, so a replayed record of
  a deleted object can never resurrect it.
- **Fork detection at startup** (:meth:`FreshnessAuthority.bootstrap`):
  the controller unseals the pin, checks the sealed counter against
  the hardware counter, rebuilds the tree from the freshest drive
  state, and refuses to serve (:class:`~repro.errors.ForkDetected`)
  when the fleet proves a root the counter never pinned.

Crash consistency: pins are written *ahead* of the drive write, with
the in-flight mutation recorded as a ``pending`` entry (label, old
leaf, new leaf).  A crash between pin and drive write leaves the fleet
proving the old leaf — startup accepts either side of a pending entry
and re-pins whatever the drives prove.  The inherent residual window
(shared with lightweight-collective-memory designs) is the single most
recent unsettled mutation; everything older is rollback-protected.

The proof hot path is cached: :class:`ProofCache` memoizes verified
leaf digests keyed by the pin epoch (the counter value), so steady-
state reads cost one SHA-256 over the record instead of a full proof
verification.  Any pin advance changes the epoch and implicitly
invalidates every cached proof.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.errors import (
    AttestationError,
    DriveOffline,
    ForkDetected,
    FreshnessError,
    KineticError,
    TransientIOError,
)
from repro.sgx.enclave import Enclave, EnclaveBinary, MonotonicCounter

#: Label prefixes in the authenticated dictionary.
LABEL_OBJECT = "o/"
LABEL_POLICY = "p/"

#: Tree depth: 16 bits of the label hash pick the bucket slot, so the
#: proof path is 16 sibling hashes regardless of dictionary size.
TREE_DEPTH = 16


def object_label(key: str) -> str:
    return LABEL_OBJECT + key


def policy_label(policy_id: str) -> str:
    return LABEL_POLICY + policy_id


def record_digest(plain: bytes) -> str:
    """Leaf digest of one plaintext metadata record."""
    return hashlib.sha256(plain).hexdigest()


def _h(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _empty_hashes() -> list[str]:
    """Subtree hash of an all-empty subtree, per level (root first)."""
    levels = [""] * (TREE_DEPTH + 1)
    levels[TREE_DEPTH] = _h(b"pesos-freshness-empty-bucket")
    for level in range(TREE_DEPTH - 1, -1, -1):
        child = bytes.fromhex(levels[level + 1])
        levels[level] = _h(child + child)
    return levels


_EMPTY = _empty_hashes()


@dataclass(frozen=True)
class FreshnessProof:
    """Membership/absence proof for one label against a pinned root.

    ``items`` is the full (label, digest) content of the label's
    bucket — membership shows the pair present, absence shows the
    bucket without it — and ``siblings`` are the ``TREE_DEPTH`` sibling
    hashes from the bucket up to the root.
    """

    label: str
    slot: int
    items: tuple
    siblings: tuple


class MerkleTree:
    """Sparse Merkle tree over label → leaf-digest mappings.

    Labels hash to one of ``2**TREE_DEPTH`` bucket slots; each bucket
    holds its labels sorted, so the structure (and every root) is a
    pure function of the mapping — independent of insertion order,
    which is what makes same-seed runs byte-reproducible.  Updates
    rewrite one bucket and the ``TREE_DEPTH`` nodes above it; empty
    subtrees hash to precomputed constants and are never materialized.
    """

    def __init__(self):
        self._digests: dict[str, str] = {}
        self._buckets: dict[int, list[str]] = {}
        self._nodes: dict[tuple[int, int], str] = {}
        #: SHA-256 invocations and bytes digested, for the
        #: deterministic overhead bench (crypto work, not wall time).
        self.hash_ops = 0
        self.hash_bytes = 0

    def __len__(self) -> int:
        return len(self._digests)

    def labels(self) -> list[str]:
        return sorted(self._digests)

    @staticmethod
    def slot_of(label: str) -> int:
        return int.from_bytes(
            hashlib.sha256(b"slot:" + label.encode()).digest()[:2], "big"
        )

    def get(self, label: str) -> str | None:
        return self._digests.get(label)

    def set(self, label: str, digest: str | None) -> None:
        """Bind ``label`` to ``digest`` (``None`` removes it)."""
        slot = self.slot_of(label)
        bucket = self._buckets.setdefault(slot, [])
        present = label in self._digests
        if digest is None:
            if not present:
                return
            del self._digests[label]
            bucket.remove(label)
            if not bucket:
                del self._buckets[slot]
        else:
            if not present:
                import bisect

                bisect.insort(bucket, label)
            self._digests[label] = digest
        self._update_path(slot)

    @property
    def root(self) -> str:
        return self._nodes.get((0, 0), _EMPTY[0])

    # -- hashing ----------------------------------------------------------

    def _hash(self, data: bytes) -> str:
        self.hash_ops += 1
        self.hash_bytes += len(data)
        return _h(data)

    def _bucket_hash(self, slot: int) -> str:
        labels = self._buckets.get(slot)
        if not labels:
            return _EMPTY[TREE_DEPTH]
        body = "\n".join(
            f"{label}={self._digests[label]}" for label in labels
        )
        return self._hash(b"bucket:" + body.encode())

    def _node(self, level: int, index: int) -> str:
        return self._nodes.get((level, index), _EMPTY[level])

    def _update_path(self, slot: int) -> None:
        digest = self._bucket_hash(slot)
        index = slot
        for level in range(TREE_DEPTH, 0, -1):
            if digest == _EMPTY[level]:
                self._nodes.pop((level, index), None)
            else:
                self._nodes[(level, index)] = digest
            sibling = self._node(level, index ^ 1)
            if index & 1:
                digest = self._hash(
                    bytes.fromhex(sibling) + bytes.fromhex(digest)
                )
            else:
                digest = self._hash(
                    bytes.fromhex(digest) + bytes.fromhex(sibling)
                )
            index >>= 1
        if digest == _EMPTY[0]:
            self._nodes.pop((0, 0), None)
        else:
            self._nodes[(0, 0)] = digest

    # -- proofs -----------------------------------------------------------

    def prove(self, label: str) -> FreshnessProof:
        """Membership (or absence) proof for ``label``."""
        slot = self.slot_of(label)
        items = tuple(
            (name, self._digests[name])
            for name in self._buckets.get(slot, [])
        )
        siblings = []
        index = slot
        for level in range(TREE_DEPTH, 0, -1):
            siblings.append(self._node(level, index ^ 1))
            index >>= 1
        return FreshnessProof(
            label=label, slot=slot, items=items, siblings=tuple(siblings)
        )

    def verify(self, root: str, proof: FreshnessProof) -> str | None:
        """Check ``proof`` against ``root``; return the proven digest.

        Returns the label's leaf digest for a membership proof, None
        for a verified absence proof; raises
        :class:`~repro.errors.FreshnessError` when the proof does not
        reproduce the root (tampered bucket or path).
        """
        if proof.slot != self.slot_of(proof.label):
            raise FreshnessError(
                f"proof slot {proof.slot} does not match label "
                f"{proof.label!r}"
            )
        if proof.items:
            body = "\n".join(
                f"{name}={digest}" for name, digest in proof.items
            )
            digest = self._hash(b"bucket:" + body.encode())
        else:
            digest = _EMPTY[TREE_DEPTH]
        index = proof.slot
        for sibling in proof.siblings:
            if index & 1:
                digest = self._hash(
                    bytes.fromhex(sibling) + bytes.fromhex(digest)
                )
            else:
                digest = self._hash(
                    bytes.fromhex(digest) + bytes.fromhex(sibling)
                )
            index >>= 1
        if digest != root:
            raise FreshnessError(
                f"proof for {proof.label!r} does not reproduce the "
                f"pinned root"
            )
        for name, leaf in proof.items:
            if name == proof.label:
                return leaf
        return None


class ProofCache:
    """Verified leaf digests, keyed by (pin epoch, label).

    Entries are valid only for the epoch (monotonic-counter value)
    they were verified under; a pin advance bumps the epoch, which
    lazily invalidates every entry — no sweep, no per-entry bookkeeping
    on the pin path.
    """

    def __init__(self, capacity: int = 4096):
        self.capacity = capacity
        self._entries: dict[str, tuple[int, str | None]] = {}
        self.hits = 0
        self.misses = 0

    def get(self, epoch: int, label: str):
        """``(found, digest)`` — found is False on miss or stale epoch."""
        entry = self._entries.get(label)
        if entry is not None and entry[0] == epoch:
            self.hits += 1
            return True, entry[1]
        self.misses += 1
        return False, None

    def put(self, epoch: int, label: str, digest: str | None) -> None:
        if len(self._entries) >= self.capacity and label not in self._entries:
            # Deterministic relief valve: drop the whole map rather
            # than track per-entry recency (entries re-verify in one
            # proof each).
            self._entries.clear()
        self._entries[label] = (epoch, digest)

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._entries)


class PinStore:
    """Untrusted persistence for the sealed pin blob.

    Models the host file / cloud KV slot the sealed state lives in:
    the adversary may replay an old blob or destroy it, which is
    exactly what fork detection must catch.  Tests tamper by assigning
    :attr:`blob` directly.
    """

    def __init__(self):
        self.blob: bytes | None = None
        self.saves = 0

    def save(self, blob: bytes) -> None:
        self.blob = blob
        self.saves += 1

    def load(self) -> bytes | None:
        return self.blob


@dataclass
class FreshnessEnvironment:
    """The trusted hardware the freshness protocol is rooted in.

    All three pieces outlive any one controller process: tests pass
    the same environment across simulated restarts, exactly as the
    physical platform would persist.
    """

    enclave: Enclave
    counter: MonotonicCounter
    pin_store: PinStore = field(default_factory=PinStore)

    @classmethod
    def ephemeral(cls, platform_key: bytes | None = None) -> "FreshnessEnvironment":
        """A self-contained environment for single-process lifetimes."""
        binary = EnclaveBinary(name="pesos-freshness", content=b"freshness")
        key = platform_key or bytes(range(32))
        return cls(
            enclave=Enclave(binary=binary, platform_root_key=key),
            counter=MonotonicCounter(),
        )


class FreshnessAuthority:
    """The enclave-rooted freshness oracle the store consults.

    One instance per controller; see the module docstring for the
    protocol.  Thread-safety under the green-thread engine comes for
    free: :meth:`prepare`/:meth:`settle` never touch a drive, so they
    run atomically between preemption points.
    """

    def __init__(self, env: FreshnessEnvironment, telemetry=None,
                 auditor=None, cache_entries: int = 4096):
        self.env = env
        self.tree = MerkleTree()
        self.cache = ProofCache(capacity=cache_entries)
        #: In-flight mutations: label -> (old leaf, new leaf); either
        #: side is acceptable until the mutation settles.
        self.pending: dict[str, tuple[str | None, str | None]] = {}
        self.auditor = auditor
        #: Serving state: inactive until bootstrap; forked means the
        #: controller refuses every request.
        self.active = False
        self.forked = False
        self.fork_reason = ""
        #: Virtual time of the current request (set by the controller
        #: per request, so pin records carry deterministic timestamps).
        self.vnow = 0.0
        self.last_pin_vnow = 0.0
        self.pins = 0
        self.seals = 0
        self.seal_bytes = 0
        self.proofs_verified = 0
        self.proofs_failed = 0
        self.stale_rejected = 0
        #: Candidate records hashed during verified reads (crypto work
        #: the unverified read path does not do), for the overhead
        #: bench.
        self.leaf_hash_ops = 0
        self.leaf_hash_bytes = 0
        if telemetry is not None and telemetry.enabled:
            telemetry.register_callback(self._metric_families)

    # -- state ------------------------------------------------------------

    @property
    def epoch(self) -> int:
        """The current pin epoch (the hardware counter value)."""
        return self.env.counter.read()

    @property
    def root(self) -> str:
        return self.tree.root

    def snapshot(self) -> dict:
        """The ``/_health`` freshness block."""
        return {
            "enabled": True,
            "active": self.active,
            "forked": self.forked,
            "fork_reason": self.fork_reason,
            "epoch": self.epoch,
            "root": self.root,
            "tracked_labels": len(self.tree),
            "pending": len(self.pending),
            "pins": self.pins,
            "last_pin_vnow": self.last_pin_vnow,
            "proofs_verified": self.proofs_verified,
            "proofs_failed": self.proofs_failed,
            "stale_rejected": self.stale_rejected,
            "proof_cache": {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "hit_ratio": round(self.cache.hit_ratio, 4),
            },
        }

    # -- pinning ----------------------------------------------------------

    def _pin(self, event: str) -> None:
        """Advance the counter and persist ``seal(root ‖ counter)``.

        Every persist — prepare, settle, abort, bootstrap — bumps the
        hardware counter and seals the *new* value, so any previously
        persisted blob is immediately stale and a replay of it fails
        the counter check at the next startup.
        """
        counter = self.env.counter.increment()
        payload = json.dumps(
            {
                "root": self.tree.root,
                "counter": counter,
                "pending": {
                    label: [old, new]
                    for label, (old, new) in sorted(self.pending.items())
                },
                "vnow": self.vnow,
            },
            sort_keys=True,
            separators=(",", ":"),
        ).encode()
        self.env.pin_store.save(self.env.enclave.seal(payload))
        self.seals += 1
        self.seal_bytes += len(payload)
        self.pins += 1
        self.last_pin_vnow = self.vnow
        if self.auditor is not None:
            self.auditor.record_pin(
                vnow=self.vnow,
                epoch=counter,
                root=self.tree.root,
                event=event,
            )

    def prepare(self, label: str, digest: str | None) -> None:
        """Write-ahead pin for one mutation (``None`` digest = delete)."""
        old = self.tree.get(label)
        self.tree.set(label, digest)
        self.pending[label] = (old, digest)
        self._pin("prepare")

    def settle(self, label: str) -> None:
        """The drive write acknowledged: retire the pending entry."""
        if self.pending.pop(label, None) is not None:
            self._pin("settle")

    def abort(self, label: str) -> None:
        """The drive write failed below quorum: revert the leaf.

        The pending entry is *kept* (some replica may have taken the
        write before the quorum failed), so reads and the next startup
        accept either side until anti-entropy converges the fleet.
        """
        entry = self.pending.get(label)
        if entry is None:
            return
        self.tree.set(label, entry[0])
        self._pin("abort")

    # -- verified lookups -------------------------------------------------

    def _gate(self) -> None:
        if self.forked:
            # The fork reason quotes unsealed *pin state* — counter
            # readings and root digests, enclave-attested integrity
            # metadata rather than object content; surfacing it is the
            # whole point of fork detection.
            # pesos: allow[taint/exception-message]
            raise ForkDetected(
                f"controller refuses to serve: {self.fork_reason}"
            )

    def expected(self, label: str) -> str | None:
        """The proof-verified leaf digest pinned for ``label``.

        Cache hit: no hashing at all.  Miss: generate a proof from the
        tree, verify it against the pinned root, memoize under the
        current epoch.
        """
        self._gate()
        found, digest = self.cache.get(self.epoch, label)
        if found:
            return digest
        proof = self.tree.prove(label)
        try:
            digest = self.tree.verify(self.tree.root, proof)
        except FreshnessError:
            self.proofs_failed += 1
            raise
        self.proofs_verified += 1
        self.cache.put(self.epoch, label, digest)
        return digest

    def acceptable(self, label: str):
        """``(expected, allowed)`` digests for one verified read.

        ``expected`` is the pinned leaf (None = proven absent);
        ``allowed`` additionally admits both sides of an unsettled
        pending mutation, which is how reads stay available across the
        prepare→write crash window.
        """
        expected = self.expected(label)
        allowed = {expected}
        entry = self.pending.get(label)
        if entry is not None:
            allowed.update(entry)
        return expected, allowed

    def leaf_digest(self, plain: bytes) -> str:
        """Hash one candidate record, counting the crypto work."""
        self.leaf_hash_ops += 1
        self.leaf_hash_bytes += len(plain)
        return record_digest(plain)

    def reject_stale(self, label: str) -> None:
        """Count one replica rejected for proving a stale leaf."""
        self.stale_rejected += 1

    # -- bootstrap / fork detection ---------------------------------------

    def _fork(self, reason: str) -> None:
        self.forked = True
        self.active = False
        self.fork_reason = reason
        if self.auditor is not None:
            self.auditor.record_fork(vnow=self.vnow, reason=reason)

    def bootstrap(self, store) -> None:
        """Fork detection at controller startup.

        Must run *before* the store is wired to this authority (reads
        during the rebuild are raw quorum reads).  On success the tree
        holds the drive-proved state, a fresh pin commits the restart
        epoch, and :attr:`active` flips on.  On any divergence the
        authority enters the forked state and the controller refuses
        to serve.
        """
        blob = self.env.pin_store.load()
        hw_counter = self.env.counter.read()
        if blob is None:
            if hw_counter != 0:
                self._fork(
                    f"sealed pin state missing but the monotonic counter "
                    f"reads {hw_counter}: pin storage was destroyed"
                )
                return
            # First launch: adopt whatever the fleet holds (trust on
            # first use) and pin it.
            self._rebuild_from(store)
            self.active = True
            self._pin("bootstrap")
            return
        try:
            state = json.loads(self.env.enclave.unseal(blob))
        except AttestationError:
            self._fork(
                "sealed pin state does not unseal: foreign or corrupt seal"
            )
            return
        if state["counter"] != hw_counter:
            # The audited fork reason quotes the unsealed pin state's
            # counter — an integrity reading the chain must record,
            # not secret content.
            # pesos: allow[taint/audit-entry]
            self._fork(
                f"sealed pin carries counter {state['counter']} but the "
                f"monotonic counter reads {hw_counter}: stale sealed "
                f"state was replayed"
            )
            return
        pending = {
            label: (old, new)
            for label, (old, new) in state.get("pending", {}).items()
        }
        self._rebuild_from(store)
        if self.tree.root != state["root"]:
            # The only legitimate divergence is an unsettled mutation
            # that never reached the drives: substituting each pending
            # label's *new* leaf must reproduce the pinned root, and
            # the drives must prove one of the two pending sides.
            restore: list[tuple[str, str | None]] = []
            resolvable = True
            for label, (old, new) in sorted(pending.items()):
                proved = self.tree.get(label)
                if proved not in (old, new):
                    resolvable = False
                    break
                restore.append((label, proved))
                self.tree.set(label, new)
            if not resolvable or self.tree.root != state["root"]:
                self._fork(
                    "drive fleet proves a metadata root the monotonic "
                    "counter never pinned: rollback or fork of drive state"
                )
                return
            # Adopt what the drives actually prove and re-pin it.
            for label, proved in restore:
                self.tree.set(label, proved)
        self.pending = {}
        self.active = True
        self._pin("bootstrap")

    def _rebuild_from(self, store) -> None:
        """Rebuild the tree from the freshest reachable drive state."""
        for label in store.scan_labels():
            if label.startswith(LABEL_OBJECT):
                key = label[len(LABEL_OBJECT):]
                try:
                    meta = store.read_meta(key)
                except KineticError:
                    # Unreachable during rebuild: the label stays out
                    # of the tree; the root comparison decides whether
                    # that is fatal.
                    continue
                if meta is not None:
                    self.tree.set(label, record_digest(meta.encode()))
            else:
                policy_id = label[len(LABEL_POLICY):]
                try:
                    blob = store.read_policy(policy_id)
                except (DriveOffline, TransientIOError):
                    continue
                if blob is not None:
                    self.tree.set(label, record_digest(blob))

    # -- exposition --------------------------------------------------------

    def _metric_families(self):
        from repro.telemetry.metrics import MetricFamily, Sample

        yield MetricFamily(
            name="pesos_freshness_pins_total",
            kind="counter",
            help="Sealed root pins persisted (counter advances).",
            samples=[Sample("pesos_freshness_pins_total", {}, self.pins)],
        )
        yield MetricFamily(
            name="pesos_freshness_proofs_total",
            kind="counter",
            help="Merkle proofs checked against the pinned root.",
            samples=[
                Sample(
                    "pesos_freshness_proofs_total",
                    {"outcome": "verified"},
                    self.proofs_verified,
                ),
                Sample(
                    "pesos_freshness_proofs_total",
                    {"outcome": "failed"},
                    self.proofs_failed,
                ),
            ],
        )
        yield MetricFamily(
            name="pesos_freshness_stale_rejected_total",
            kind="counter",
            help="Replica records rejected for proving a stale leaf.",
            samples=[
                Sample(
                    "pesos_freshness_stale_rejected_total",
                    {},
                    self.stale_rejected,
                )
            ],
        )
        yield MetricFamily(
            name="pesos_freshness_proof_cache_total",
            kind="counter",
            help="Proof-cache lookups by result.",
            samples=[
                Sample(
                    "pesos_freshness_proof_cache_total",
                    {"result": "hit"},
                    self.cache.hits,
                ),
                Sample(
                    "pesos_freshness_proof_cache_total",
                    {"result": "miss"},
                    self.cache.misses,
                ),
            ],
        )
        yield MetricFamily(
            name="pesos_freshness_epoch",
            kind="gauge",
            help="Current pin epoch (monotonic counter value).",
            samples=[Sample("pesos_freshness_epoch", {}, self.epoch)],
        )
        yield MetricFamily(
            name="pesos_freshness_last_pin_vnow",
            kind="gauge",
            help="Virtual time of the most recent root pin.",
            samples=[
                Sample(
                    "pesos_freshness_last_pin_vnow", {}, self.last_pin_vnow
                )
            ],
        )
        yield MetricFamily(
            name="pesos_fork_detected",
            kind="gauge",
            help="1 while the controller refuses to serve after fork "
            "detection, else 0.",
            samples=[Sample("pesos_fork_detected", {}, int(self.forked))],
        )


__all__ = [
    "FreshnessAuthority",
    "FreshnessEnvironment",
    "FreshnessProof",
    "MerkleTree",
    "PinStore",
    "ProofCache",
    "TREE_DEPTH",
    "object_label",
    "policy_label",
    "record_digest",
]
