"""Side-effect accounting for the benchmark harness.

The controller is functional code; the discrete-event benchmarks need
to know what each request *did* — disk operations, bytes copied,
cache hits, policy work — to charge virtual time.  Components record
effects here; the simulation drains the recorder after each request.

Recording is deliberately cheap (a tuple append) because it sits on
the hot path of 100k-operation benchmark runs.
"""

from __future__ import annotations

from collections import Counter

DISK_READ = "disk_read"
DISK_WRITE = "disk_write"
DISK_DELETE = "disk_delete"
CACHE_HIT = "cache_hit"
CACHE_MISS = "cache_miss"
ENCRYPT = "encrypt"
DECRYPT = "decrypt"
POLICY_CHECK = "policy_check"
POLICY_COMPILE = "policy_compile"
POLICY_LOAD = "policy_load"
COPY = "copy"
LOG_APPEND = "log_append"


class EffectsRecorder:
    """Collects effect tuples for the request in flight."""

    __slots__ = ("events", "totals")

    def __init__(self) -> None:
        self.events: list[tuple] = []
        self.totals: Counter = Counter()

    def record(self, kind: str, *detail) -> None:
        self.events.append((kind, *detail))
        self.totals[kind] += 1

    def drain(self) -> list[tuple]:
        """Return and clear the in-flight event list (totals persist)."""
        events, self.events = self.events, []
        return events

    def cache_hit_rate(self, region: str) -> float:
        hits = self.totals[f"{CACHE_HIT}:{region}"]
        misses = self.totals[f"{CACHE_MISS}:{region}"]
        total = hits + misses
        return hits / total if total else 0.0

    def record_cache(self, region: str, hit: bool) -> None:
        kind = CACHE_HIT if hit else CACHE_MISS
        self.events.append((kind, region))
        self.totals[f"{kind}:{region}"] += 1


class NullRecorder:
    """Drop-in no-op recorder for pure functional use."""

    __slots__ = ()
    events: list = []

    def record(self, kind: str, *detail) -> None:
        pass

    def record_cache(self, region: str, hit: bool) -> None:
        pass

    def drain(self) -> list:
        return []
