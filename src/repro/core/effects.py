"""Side-effect accounting for the benchmark harness.

The controller is functional code; the discrete-event benchmarks need
to know what each request *did* — disk operations, bytes copied,
cache hits, policy work — to charge virtual time.  Components record
effects here; the simulation drains the recorder after each request.

Recording is deliberately cheap (a tuple append plus one counter
increment) because it sits on the hot path of 100k-operation benchmark
runs.

Running totals live in the telemetry metrics registry: each recorder
owns (or is handed) a :class:`~repro.telemetry.metrics.MetricsRegistry`
and keeps per-kind totals in a labeled ``pesos_effects_total`` counter,
so one ``GET /_metrics`` scrape covers effect accounting alongside the
rest of the system.  The historical ``totals`` mapping API survives as
a thin view over that counter.
"""

from __future__ import annotations

from repro.telemetry.metrics import MetricsRegistry

DISK_READ = "disk_read"
DISK_WRITE = "disk_write"
DISK_DELETE = "disk_delete"
CACHE_HIT = "cache_hit"
CACHE_MISS = "cache_miss"
ENCRYPT = "encrypt"
DECRYPT = "decrypt"
POLICY_CHECK = "policy_check"
POLICY_COMPILE = "policy_compile"
POLICY_LOAD = "policy_load"
COPY = "copy"
LOG_APPEND = "log_append"


class _TotalsView:
    """Counter-compatible mapping over ``pesos_effects_total``.

    Kept so pre-telemetry callers (``effects.totals[DISK_READ]``,
    ``.get``, ``.clear``) work unchanged while the registry holds the
    canonical values.
    """

    __slots__ = ("_counter",)

    def __init__(self, counter) -> None:
        self._counter = counter

    def __getitem__(self, kind: str) -> float:
        child = self._counter._children.get((kind,))
        return child.value if child is not None else 0

    def get(self, kind: str, default=0):
        child = self._counter._children.get((kind,))
        return child.value if child is not None else default

    def __contains__(self, kind: str) -> bool:
        return (kind,) in self._counter._children

    def __iter__(self):
        return (key[0] for key in self._counter._children)

    def __len__(self) -> int:
        return len(self._counter._children)

    def items(self):
        return [
            (key[0], child.value)
            for key, child in self._counter._children.items()
        ]

    def clear(self) -> None:
        self._counter.reset()

    def __repr__(self) -> str:
        return f"_TotalsView({dict(self.items())!r})"


class EffectsRecorder:
    """Collects effect tuples for the request in flight."""

    __slots__ = ("events", "totals", "registry", "_kinds")

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.events: list[tuple] = []
        self.registry = registry or MetricsRegistry()
        self._kinds = self.registry.counter(
            "pesos_effects_total",
            "Side-effect events recorded per request path, by kind.",
            ("kind",),
        )
        self.totals = _TotalsView(self._kinds)

    def record(self, kind: str, *detail) -> None:
        self.events.append((kind, *detail))
        self._kinds.labels(kind).inc()

    def drain(self) -> list[tuple]:
        """Return and clear the in-flight event list (totals persist)."""
        events, self.events = self.events, []
        return events

    def cache_hit_rate(self, region: str) -> float:
        hits = self.totals[f"{CACHE_HIT}:{region}"]
        misses = self.totals[f"{CACHE_MISS}:{region}"]
        total = hits + misses
        return hits / total if total else 0.0

    def record_cache(self, region: str, hit: bool) -> None:
        kind = CACHE_HIT if hit else CACHE_MISS
        self.events.append((kind, region))
        # Bounded: kind is hit/miss and regions are the fixed cache
        # tiers, so the label space cannot grow with the workload.
        self._kinds.labels(f"{kind}:{region}").inc()  # pesos: allow[telemetry-label-cardinality]


class NullRecorder:
    """Drop-in no-op recorder for pure functional use."""

    __slots__ = ()
    events: tuple = ()

    def record(self, kind: str, *detail) -> None:
        pass

    def record_cache(self, region: str, hit: bool) -> None:
        pass

    def drain(self) -> list:
        return []
