"""Per-key request locks for the concurrent request engine.

Non-transactional requests historically bypassed the VLL lock table
(:mod:`repro.core.txn`), which was fine while :class:`PesosController`
executed requests start-to-finish sequentially.  Once requests run as
green threads that preempt at every drive operation, two puts to the
same key could interleave their content/metadata writes.  This module
adds the missing layer: a reader-writer lock table keyed by object
keys, designed for cooperative green threads.

There is deliberately no blocking ``acquire``: green threads call
:meth:`KeyLockTable.try_acquire` and, on failure, yield back to the
scheduler and retry on their next dispatch (the engine's spin-yield
loop).  Because every request holds at most one key lock — and
multi-key users go through :meth:`try_acquire_all`, which takes
all-or-nothing — there is no hold-and-wait and therefore no deadlock.

The table cooperates with the VLL transaction manager in both
directions: a ``conflicts`` callback lets transactional locks block
request locks, and an ``on_release`` callback lets a request-lock
release drain the VLL queue (a queued transaction's front may have
been waiting on exactly this key).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.analysis.sanitizer import NULL_SANITIZER


class KeyLockTable:
    """Reader-writer locks over object keys, for cooperative threads.

    Shared (read) holds may overlap each other; an exclusive (write)
    hold overlaps nothing.  Acquisition is non-blocking; fairness is
    the scheduler's concern (seeded schedules make starvation cases
    reproducible rather than impossible).
    """

    def __init__(
        self,
        conflicts: Callable[[str], bool] | None = None,
        on_release: Callable[[str], None] | None = None,
    ):
        #: key -> number of shared holders (absent = none).
        self._shared: dict[str, int] = {}
        #: keys currently held exclusively.
        self._exclusive: set[str] = set()
        #: External conflict source (the VLL lock table): when it
        #: reports a key, neither mode may be acquired.
        self._conflicts = conflicts
        #: Notified after each release, so lock-waiters outside this
        #: table (the VLL queue) can make progress.
        self._on_release = on_release
        self.acquisitions = 0
        self.contended = 0
        #: Concurrency-sanitizer hooks; the shared no-op by default.
        self.sanitizer = NULL_SANITIZER

    def bind(
        self,
        conflicts: Callable[[str], bool] | None = None,
        on_release: Callable[[str], None] | None = None,
    ) -> None:
        """Late-wire the VLL callbacks (the two objects cross-reference)."""
        if conflicts is not None:
            self._conflicts = conflicts
        if on_release is not None:
            self._on_release = on_release

    # -- acquisition -------------------------------------------------------

    def try_acquire(self, key: str, exclusive: bool = True) -> bool:
        """Take one lock if free; never blocks.  Returns success."""
        if self._conflicts is not None and self._conflicts(key):
            self.contended += 1
            return False
        if key in self._exclusive:
            self.contended += 1
            return False
        if exclusive:
            if self._shared.get(key, 0):
                self.contended += 1
                return False
            self._exclusive.add(key)
        else:
            self._shared[key] = self._shared.get(key, 0) + 1
        self.acquisitions += 1
        # Lock id ("obj", key) is shared with the VLL manager: the two
        # tables cross-exclude per key (conflicts/on_release wiring),
        # so they implement one logical lock, and the sanitizer must
        # see them as one or it reports false races between a request
        # and a transaction on the same key.
        self.sanitizer.on_lock_acquire(
            ("obj", key), "w" if exclusive else "r"
        )
        return True

    def try_acquire_all(
        self, keys: Sequence[str], exclusive: bool = True
    ) -> bool:
        """All-or-nothing multi-key acquisition (deadlock-free).

        Either every key is taken or none is; a partial grab is rolled
        back before returning, so callers can safely yield and retry
        without ever holding while waiting.
        """
        taken: list[str] = []
        # Report the whole grab as one atomic group event: the partial
        # holds inside this loop are rolled back before any wait, so
        # they must not create lock-order edges.
        sanitizer, self.sanitizer = self.sanitizer, NULL_SANITIZER
        try:
            for key in keys:
                if not self.try_acquire(key, exclusive):
                    for held in taken:
                        self.release(held, exclusive)
                    return False
                taken.append(key)
        finally:
            self.sanitizer = sanitizer
        self.sanitizer.on_group_acquire([("obj", key) for key in keys])
        return True

    # -- release -----------------------------------------------------------

    def release(self, key: str, exclusive: bool = True) -> None:
        """Drop one hold; raises ``KeyError`` on a lock never taken."""
        if exclusive:
            self._exclusive.remove(key)
        else:
            remaining = self._shared[key] - 1
            if remaining:
                self._shared[key] = remaining
            else:
                del self._shared[key]
        self.sanitizer.on_lock_release(("obj", key))
        if self._on_release is not None:
            self._on_release(key)

    def release_all(self, keys: Sequence[str], exclusive: bool = True) -> None:
        sanitizer, self.sanitizer = self.sanitizer, NULL_SANITIZER
        try:
            for key in keys:
                self.release(key, exclusive)
        finally:
            self.sanitizer = sanitizer
        self.sanitizer.on_group_release([("obj", key) for key in keys])

    # -- introspection -----------------------------------------------------

    def locked(self, key: str) -> bool:
        """Whether any hold (either mode) exists on ``key``."""
        return key in self._exclusive or bool(self._shared.get(key, 0))

    def held_exclusive(self, key: str) -> bool:
        return key in self._exclusive

    def __len__(self) -> int:
        """Number of keys with at least one hold (0 at quiescence)."""
        return len(self._exclusive) + len(self._shared)

    def snapshot(self) -> dict:
        return {
            "exclusive": sorted(self._exclusive),
            "shared": dict(sorted(self._shared.items())),
        }
