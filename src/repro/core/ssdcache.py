"""Untrusted local SSD caching tier (the paper's first future-work item).

§8: "we will extend Pesos with a local SSD as the untrusted fast
caching layer to overcome the limitations of main memory capacity
(EPC paging) and slow disk performance, while protecting against
integrity and freshness attacks."

Design: cached blobs live *outside* the enclave on a host-local SSD
the adversary fully controls.  The enclave keeps only a small
*freshness table*: for every cached entry, the nonce it was sealed
with and the SHA-256 of the sealed blob (~56 bytes per entry, so a
multi-gigabyte SSD cache costs megabytes of enclave memory).  On a
cache read the enclave

1. recomputes the blob hash and compares it with the table entry —
   a *tampered* blob fails here;
2. opens the AEAD seal with the recorded nonce — a blob *substituted*
   from a different key/nonce fails here;
3. and because the table entry is overwritten on every update, a
   *replayed stale* blob (the freshness/rollback attack) fails the
   hash comparison too.

Evicting a freshness-table entry makes the corresponding SSD blob
permanently unusable, so the bounded in-enclave table is the cache's
true capacity limit — exactly the EPC-extension trade the paper
proposes.
"""

from __future__ import annotations

import hashlib
import secrets
from dataclasses import dataclass, field

from repro.crypto.aead import StreamAead
from repro.errors import IntegrityError
from repro.telemetry import NULL_TELEMETRY
from repro.telemetry.metrics import MetricFamily, Sample
from repro.util.lfu import LFUCache

SSD_READ = "ssd_read"
SSD_WRITE = "ssd_write"


@dataclass
class SimulatedSsd:
    """The untrusted device: a blob store the adversary may rewrite."""

    blobs: dict = field(default_factory=dict)
    reads: int = 0
    writes: int = 0

    def read(self, key: str) -> bytes | None:
        self.reads += 1
        return self.blobs.get(key)

    def write(self, key: str, blob: bytes) -> None:
        self.writes += 1
        self.blobs[key] = blob

    def discard(self, key: str) -> None:
        self.blobs.pop(key, None)

    # -- attack helpers (tests / demos) ---------------------------------

    def tamper(self, key: str, flip_byte: int = 0) -> None:
        blob = bytearray(self.blobs[key])
        blob[flip_byte] ^= 0xFF
        self.blobs[key] = bytes(blob)

    def snapshot(self, key: str) -> bytes:
        return self.blobs[key]

    def rollback(self, key: str, old_blob: bytes) -> None:
        """Replay an earlier (validly sealed) blob."""
        self.blobs[key] = old_blob


@dataclass(frozen=True)
class _FreshnessRecord:
    nonce: bytes
    blob_hash: bytes


@dataclass
class SsdCacheStats:
    hits: int = 0
    misses: int = 0
    integrity_failures: int = 0
    inserts: int = 0


class SsdCacheTier:
    """Enclave-side view of the untrusted SSD cache."""

    #: Approximate enclave bytes per freshness-table entry.
    RECORD_BYTES = 56

    def __init__(
        self,
        device: SimulatedSsd | None = None,
        max_entries: int = 65536,
        key: bytes | None = None,
        effects=None,
        telemetry=None,
    ):
        self.device = device or SimulatedSsd()
        self._aead = StreamAead(key or secrets.token_bytes(32))
        self._records: LFUCache = LFUCache(max_entries=max_entries)
        self.stats = SsdCacheStats()
        self._effects = effects
        self.telemetry = telemetry or NULL_TELEMETRY
        self._m_events = self.telemetry.counter(
            "pesos_ssd_cache_events_total",
            "Untrusted-SSD cache tier events, by kind.",
            ("event",),
        )
        if self.telemetry.enabled:
            self.telemetry.register_callback(self._derived_metrics)

    def __len__(self) -> int:
        return len(self._records)

    def enclave_bytes(self) -> int:
        """In-enclave footprint of the freshness table."""
        return len(self._records) * self.RECORD_BYTES

    # -- cache operations ---------------------------------------------------

    def put(self, key: str, value: bytes) -> None:
        """Seal ``value`` onto the SSD and record its freshness."""
        nonce = secrets.token_bytes(12)
        blob = self._aead.seal(nonce, value, key.encode())
        self.device.write(key, blob)
        self._records.put(
            key,
            _FreshnessRecord(
                nonce=nonce, blob_hash=hashlib.sha256(blob).digest()
            ),
        )
        self.stats.inserts += 1
        self._m_events.labels("insert").inc()
        if self._effects is not None:
            self._effects.record(SSD_WRITE, len(blob))

    def get(self, key: str) -> bytes | None:
        """Fetch and verify; returns None on miss OR any integrity issue.

        An integrity/freshness failure is indistinguishable from a
        miss to callers (they re-fetch from the trusted drives), but
        it is counted and the poisoned entry is dropped.
        """
        record = self._records.get(key)
        if record is None:
            self.stats.misses += 1
            self._m_events.labels("miss").inc()
            return None
        blob = self.device.read(key)
        if self._effects is not None and blob is not None:
            self._effects.record(SSD_READ, len(blob))
        if blob is None:
            # The untrusted side lost (or withheld) the blob.
            self._records.remove(key)
            self.stats.misses += 1
            self._m_events.labels("miss").inc()
            return None
        if hashlib.sha256(blob).digest() != record.blob_hash:
            self._poisoned(key)
            return None
        try:
            value = self._aead.open(record.nonce, blob, key.encode())
        except IntegrityError:
            self._poisoned(key)
            return None
        self.stats.hits += 1
        self._m_events.labels("hit").inc()
        return value

    def invalidate(self, key: str) -> None:
        self._records.remove(key)
        self.device.discard(key)

    def _poisoned(self, key: str) -> None:
        self.stats.integrity_failures += 1
        self.stats.misses += 1
        self._m_events.labels("integrity_failure").inc()
        self._m_events.labels("miss").inc()
        self._records.remove(key)
        self.device.discard(key)

    def _derived_metrics(self):
        """Hit-ratio and enclave-footprint gauges at scrape time."""
        total = self.stats.hits + self.stats.misses
        ratio = self.stats.hits / total if total else 0.0
        yield MetricFamily(
            name="pesos_ssd_cache_hit_ratio",
            kind="gauge",
            help="SSD cache tier hit ratio since start.",
            samples=[Sample("pesos_ssd_cache_hit_ratio", {}, ratio)],
        )
        yield MetricFamily(
            name="pesos_ssd_cache_enclave_bytes",
            kind="gauge",
            help="In-enclave freshness-table footprint of the SSD tier.",
            samples=[
                Sample(
                    "pesos_ssd_cache_enclave_bytes", {}, self.enclave_bytes()
                )
            ],
        )
