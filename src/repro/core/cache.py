"""Enclave cache regions (§4.2).

Pesos maintains *separate* bounded memory regions per data kind so one
hot region cannot evict another's entries: compiled policies (5 MB
default), objects fetched for requests or during policy evaluation,
and object keys/metadata (600 KB default).  All regions approximate
LFU eviction and report hits/misses to the effects recorder so the
benchmarks can observe cache behaviour (Fig. 8 depends on it).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.effects import NullRecorder
from repro.telemetry import NULL_TELEMETRY
from repro.telemetry.metrics import MetricFamily, Sample
from repro.util.lfu import LFUCache

POLICY_REGION = "policy"
OBJECT_REGION = "object"
KEY_REGION = "keys"


@dataclass
class CacheConfig:
    """Byte budgets per region, mirroring the paper's defaults."""

    policy_bytes: int = 5 * 1024 * 1024
    object_bytes: int = 48 * 1024 * 1024
    key_bytes: int = 600 * 1024
    #: Entry-count cap for the policy cache, used by Fig. 8 (50 k).
    policy_entries: int | None = None
    #: Aging keeps the LFU approximation honest under shifting load.
    age_interval: int = 4096


class CacheManager:
    """The controller's cache regions plus effect reporting."""

    def __init__(
        self, config: CacheConfig | None = None, effects=None, telemetry=None
    ):
        self.config = config or CacheConfig()
        self.effects = effects or NullRecorder()
        self.telemetry = telemetry or NULL_TELEMETRY
        self._m_hits = self.telemetry.counter(
            "pesos_cache_hits_total",
            "Enclave cache hits, by region.",
            ("region",),
        )
        self._m_misses = self.telemetry.counter(
            "pesos_cache_misses_total",
            "Enclave cache misses, by region.",
            ("region",),
        )
        if self.telemetry.enabled:
            self.telemetry.register_callback(self._derived_metrics)
        self.policies: LFUCache = LFUCache(
            max_entries=self.config.policy_entries,
            max_bytes=self.config.policy_bytes,
            weigher=lambda policy: policy.size_bytes(),
            age_interval=self.config.age_interval,
        )
        self.objects: LFUCache = LFUCache(
            max_bytes=self.config.object_bytes,
            weigher=len,
            age_interval=self.config.age_interval,
        )
        self.keys: LFUCache = LFUCache(
            max_bytes=self.config.key_bytes,
            weigher=lambda meta: meta.weight(),
            age_interval=self.config.age_interval,
        )

    # -- region accessors with effect reporting ---------------------------

    def _record(self, region: str, hit: bool) -> None:
        self.effects.record_cache(region, hit)
        (self._m_hits if hit else self._m_misses).labels(region).inc()

    def get_policy(self, policy_id: str):
        policy = self.policies.get(policy_id)
        self._record(POLICY_REGION, policy is not None)
        return policy

    def put_policy(self, policy_id: str, policy) -> None:
        self.policies.put(policy_id, policy)

    def get_object(self, cache_key: str):
        value = self.objects.get(cache_key)
        self._record(OBJECT_REGION, value is not None)
        return value

    def put_object(self, cache_key: str, value: bytes) -> None:
        self.objects.put(cache_key, value)

    def invalidate_object(self, cache_key: str) -> None:
        self.objects.remove(cache_key)

    def get_meta(self, key: str):
        meta = self.keys.get(key)
        self._record(KEY_REGION, meta is not None)
        return meta

    def put_meta(self, key: str, meta) -> None:
        self.keys.put(key, meta)

    def invalidate_meta(self, key: str) -> None:
        self.keys.remove(key)

    # -- accounting ----------------------------------------------------------

    def memory_in_use(self) -> int:
        """Total bytes across regions (for EPC footprint accounting)."""
        return (
            self.policies.total_weight
            + self.objects.total_weight
            + self.keys.total_weight
        )

    def region_stats(self) -> dict:
        return {
            POLICY_REGION: self.policies.stats,
            OBJECT_REGION: self.objects.stats,
            KEY_REGION: self.keys.stats,
        }

    def _derived_metrics(self):
        """Hit-ratio and occupancy gauges, computed at scrape time."""
        regions = {
            POLICY_REGION: self.policies,
            OBJECT_REGION: self.objects,
            KEY_REGION: self.keys,
        }
        hits = self._m_hits.series()
        misses = self._m_misses.series()
        ratio_samples = []
        byte_samples = []
        for region, cache in regions.items():
            key = (region,)
            region_hits = hits.get(key, 0.0)
            total = region_hits + misses.get(key, 0.0)
            ratio_samples.append(
                Sample(
                    "pesos_cache_hit_ratio",
                    {"region": region},
                    region_hits / total if total else 0.0,
                )
            )
            byte_samples.append(
                Sample(
                    "pesos_cache_bytes",
                    {"region": region},
                    cache.total_weight,
                )
            )
        yield MetricFamily(
            name="pesos_cache_hit_ratio",
            kind="gauge",
            help="Enclave cache hit ratio since start, by region.",
            samples=ratio_samples,
        )
        yield MetricFamily(
            name="pesos_cache_bytes",
            kind="gauge",
            help="Bytes resident per enclave cache region.",
            samples=byte_samples,
        )
