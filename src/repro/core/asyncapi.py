"""The asynchronous operation interface (§4.1).

Write-class requests may be submitted asynchronously: the controller
acknowledges immediately with an operation id, executes the request in
the background, and buffers the final result.  Due to limited enclave
memory, only the results of the last 2048 operations are retained —
older results are discarded and querying them returns "gone" (the
client must re-issue the original request, §4.1 fault tolerance).
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

from repro.errors import ResultExpired

RESULT_BUFFER_SIZE = 2048

PENDING = "pending"
DONE = "done"


@dataclass
class OperationResult:
    """State of one asynchronous operation."""

    operation_id: str
    fingerprint: str
    state: str = PENDING
    result: Any = None

    @property
    def done(self) -> bool:
        return self.state == DONE


class AsyncTracker:
    """Issues operation ids and buffers the most recent results."""

    def __init__(self, buffer_size: int = RESULT_BUFFER_SIZE):
        self.buffer_size = buffer_size
        self._results: OrderedDict[str, OperationResult] = OrderedDict()
        self._ids = itertools.count(1)
        self.issued = 0
        self.discarded = 0
        #: Evictions that hit a still-PENDING entry: under load, a
        #: burst of ``begin`` calls can push out an operation whose
        #: execution has not finished yet.  Its eventual ``complete``
        #: lands nowhere and the client sees ``ResultExpired`` —
        #: correct per §4.1 (re-submit), but worth surfacing.
        self.discarded_pending = 0
        #: The completion side of ``discarded_pending``: the operation
        #: *did* run to completion, but its entry was already evicted,
        #: so the finished result lands nowhere.  Without this counter
        #: a "ran, result expired" is indistinguishable from "never
        #: ran" in zero-lost-acked-write accounting.
        self.completed_after_evict = 0

    def begin(self, fingerprint: str) -> OperationResult:
        """Register a new pending operation for a client."""
        operation_id = f"op-{next(self._ids):08d}"
        entry = OperationResult(
            operation_id=operation_id, fingerprint=fingerprint
        )
        self._results[operation_id] = entry
        self.issued += 1
        while len(self._results) > self.buffer_size:
            _, evicted = self._results.popitem(last=False)
            self.discarded += 1
            if evicted.state == PENDING:
                self.discarded_pending += 1
        return entry

    def complete(self, operation_id: str, result: Any) -> bool:
        """Record the final result; False if the entry was evicted."""
        entry = self._results.get(operation_id)
        if entry is None:
            self.completed_after_evict += 1
            return False
        entry.state = DONE
        entry.result = result
        return True

    def query(self, operation_id: str, fingerprint: str) -> OperationResult:
        """Fetch an operation's state; enforces client ownership."""
        entry = self._results.get(operation_id)
        if entry is None:
            raise ResultExpired(
                f"result for {operation_id} was discarded; re-submit the request"
            )
        if entry.fingerprint != fingerprint:
            # Results are session-scoped; another client's ids are
            # indistinguishable from expired ones.
            raise ResultExpired(f"no result for {operation_id}")
        return entry

    def __len__(self) -> int:
        return len(self._results)
