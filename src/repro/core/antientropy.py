"""Dirty-replica journal and the anti-entropy repair loop (§4.5).

The paper keeps *no* replication metadata: placement is deterministic
and a failed drive's replicas are simply stale once it returns.  The
journal is the minimal soft-state needed to make that model converge —
whenever the store acknowledges a write below full replication, or a
read fails over past a missing/corrupt copy, the object key is
journaled.  :class:`AntiEntropyRepairer` later walks the journal and
drives the store's existing ``scrub``/``repair`` until every replica
matches, discarding keys only once a scrub comes back fully ``ok``.

Losing the journal (it lives in enclave memory) is safe: it is an
accelerator, not a ledger.  A full scrub sweep — or the next failed
read — rediscovers any divergence.

There is no background thread in this reproduction; the controller
pumps :meth:`AntiEntropyRepairer.run_once` every
``anti_entropy_interval`` requests, and tests call it directly.  That
is the synchronous stand-in for the paper's background maintenance.
"""

from __future__ import annotations

from repro.errors import IntegrityError, PesosError
from repro.telemetry import NULL_TELEMETRY

#: Journal entry kinds: objects repair via scrub/repair, policies via
#: a plain re-write of the immutable blob.
KIND_OBJECT = "object"
KIND_POLICY = "policy"


class DirtyJournal:
    """Keys with known-missing or suspect replicas, pending repair."""

    def __init__(self):
        self._entries: dict[tuple[str, str], set[int]] = {}

    def mark(self, kind: str, key: str, drive_indexes=()) -> None:
        self._entries.setdefault((kind, key), set()).update(drive_indexes)

    def discard(self, kind: str, key: str) -> None:
        self._entries.pop((kind, key), None)

    def entries(self) -> list[tuple[str, str]]:
        return list(self._entries)

    def pending(self, kind: str, key: str) -> set[int]:
        return set(self._entries.get((kind, key), ()))

    def __contains__(self, kind_key: tuple[str, str]) -> bool:
        return kind_key in self._entries

    def __len__(self) -> int:
        return len(self._entries)


class AntiEntropyRepairer:
    """Walks the dirty journal and converges replicas."""

    def __init__(self, store, telemetry=None):
        self.store = store
        self.telemetry = telemetry or NULL_TELEMETRY
        self.runs = 0
        self._m_runs = self.telemetry.counter(
            "pesos_repair_runs_total",
            "Anti-entropy passes over the dirty journal.",
        )
        self._m_repaired = self.telemetry.counter(
            "pesos_repair_blobs_total",
            "Replica blobs rewritten by anti-entropy repair.",
        )
        self._m_keys = self.telemetry.counter(
            "pesos_repair_keys_total",
            "Journaled keys processed by anti-entropy, by outcome.",
            ("outcome",),
        )

    def run_once(self, max_keys: int | None = None) -> dict:
        """Process up to ``max_keys`` journaled keys; returns a report.

        A key leaves the journal only when a post-repair scrub shows
        every replica ``ok`` (or the object no longer exists); keys
        whose drives are still down stay journaled for the next pass.
        """
        self.runs += 1
        self._m_runs.inc()
        journal = self.store.journal
        repaired = 0
        converged: list[str] = []
        kept: list[str] = []
        for kind, key in journal.entries()[:max_keys]:
            try:
                if kind == KIND_POLICY:
                    done = self._repair_policy(key)
                else:
                    count, done = self._repair_object(key)
                    repaired += count
            except PesosError:
                # Below quorum or every replica unreachable: keep the
                # key journaled and let a later pass converge it.
                kept.append(key)
                self._m_keys.labels("deferred").inc()
                continue
            if done:
                journal.discard(kind, key)
                converged.append(key)
                self._m_keys.labels("converged").inc()
            else:
                kept.append(key)
                self._m_keys.labels("pending").inc()
        return {
            "repaired": repaired,
            "converged": converged,
            "pending": kept,
            "journal_size": len(journal),
        }

    def run_until_converged(self, max_passes: int = 8) -> dict:
        """Repeat :meth:`run_once` until the journal drains (or gives up)."""
        report = {"repaired": 0, "converged": [], "pending": [],
                  "journal_size": len(self.store.journal)}
        for _ in range(max_passes):
            if not len(self.store.journal):
                break
            step = self.run_once()
            report["repaired"] += step["repaired"]
            report["converged"].extend(step["converged"])
            report["pending"] = step["pending"]
            report["journal_size"] = step["journal_size"]
        return report

    def _repair_object(self, key: str) -> tuple[int, bool]:
        # With a freshness authority attached, this read verifies a
        # Merkle proof against the pinned root — so repair converges
        # the fleet toward the *proof-verified* freshest record, never
        # toward a stale-but-valid replica a rollback attack planted.
        meta = self.store.read_meta(key)
        if meta is None or not meta.exists:
            # Deleted since it was journaled; nothing left to repair.
            return 0, True
        repaired = self.store.repair(meta)
        if repaired:
            self._m_repaired.inc(repaired)
        report = self.store.scrub(meta)
        return repaired, all(status == "ok" for _v, _d, status in report)

    def _repair_policy(self, policy_id: str) -> bool:
        blob = self.store.read_policy(policy_id)
        if blob is None:
            return True
        # Policies are content-addressed (the id *is* the policy
        # hash), so the repair source must hash back to its own id —
        # otherwise a stale-but-valid blob served by one replica would
        # be re-written to every replica, turning anti-entropy into a
        # rollback amplifier.  Blobs that are not compiled policies at
        # all (the store API allows arbitrary bytes) have no hash to
        # check; the AEAD open already authenticated them.  With a
        # freshness authority attached the read above is additionally
        # proof-verified against the pinned root.
        from repro.errors import PolicyError
        from repro.policy.binary import CompiledPolicy

        try:
            parsed_hash = CompiledPolicy.from_bytes(blob).policy_hash()
        except PolicyError:
            parsed_hash = None
        if parsed_hash is not None and parsed_hash != policy_id:
            raise IntegrityError(
                f"policy {policy_id!r} repair source fails its "
                f"content-address check"
            )
        # Immutable blob: re-writing through the quorum path restores
        # any replica that missed the original write.
        self.store.write_policy(policy_id, blob)
        return True
