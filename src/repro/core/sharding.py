"""Sharded deployment: multiple controllers behind a load balancer.

§6.2: "A more immediate solution to increase the overall system
throughput is to run multiple Pesos instances in parallel behind a
load balancer while sharding the object space among them."

:class:`ShardedPesos` is that load balancer: it routes object
operations to shards by key hash, broadcasts policy installation (a
policy's identity is its content hash, so every shard agrees on ids),
and pins asynchronous operations and transactions to the shard that
created them.  Transactions cannot span shards — a cross-shard key is
rejected rather than half-committed, matching the paper's position
that distributed transactions belong in a layer above Pesos (§4.4).
"""

from __future__ import annotations

import hashlib
from dataclasses import replace

from repro.core.admission import AdmissionConfig, AdmissionController
from repro.core.controller import PesosController
from repro.core.request import Request, Response
from repro.errors import ConfigurationError, RequestError, TransactionError


class ShardedPesos:
    """Routes client requests across independent Pesos instances."""

    def __init__(
        self,
        controllers: list[PesosController],
        admission: AdmissionConfig | None = None,
    ):
        if not controllers:
            raise ConfigurationError("need at least one shard")
        self.shards = list(controllers)
        self._txid_shard: dict[str, int] = {}
        self._opid_shard: dict[str, int] = {}
        self.routed = [0] * len(controllers)
        #: Per-shard overload protection: each shard gets its own
        #: :class:`AdmissionController` over its own session manager,
        #: so one hot shard sheds without throttling its siblings.  The
        #: jitter seed is offset per shard so Retry-After hints across
        #: shards decorrelate while staying replayable.
        self.admission: list[AdmissionController] | None = None
        if admission is not None:
            self.admission = [
                AdmissionController(
                    replace(
                        admission,
                        seed=admission.seed + index,
                        priorities=dict(admission.priorities),
                    ),
                    sessions=shard.sessions,
                    telemetry=getattr(shard, "telemetry", None),
                )
                for index, shard in enumerate(self.shards)
            ]

    # -- routing ---------------------------------------------------------------

    def shard_index(self, key: str) -> int:
        digest = hashlib.sha256(key.encode()).digest()
        return int.from_bytes(digest[:8], "big") % len(self.shards)

    def shard_for(self, key: str) -> PesosController:
        return self.shards[self.shard_index(key)]

    # -- the load-balancer request path ------------------------------------------

    def handle(
        self, request: Request, fingerprint: str, now: float = 0.0  # pesos: allow[det-default-clock]
    ) -> Response:
        request.validate()
        method = request.method
        if method == "put_policy":
            return self._broadcast_policy(request, fingerprint, now)
        if method == "get_policy":
            # Policies exist on every shard; any shard can answer.
            return self._route(0, request, fingerprint, now)
        if method == "create_tx":
            # The transaction binds to a shard at its first keyed op.
            response = Response(status=200, txid=f"pending-{len(self._txid_shard)}")
            self._txid_shard[response.txid] = -1
            return response
        if method in ("add_read", "add_write"):
            return self._tx_keyed(request, fingerprint, now)
        if method in ("commit_tx", "abort_tx", "tx_results"):
            return self._tx_routed(request, fingerprint, now)
        if method == "status":
            index = self._opid_shard.get(request.operation_id)
            if index is None:
                from repro.errors import ResultExpired

                return Response(
                    status=ResultExpired.status,
                    error=f"no shard holds {request.operation_id}",
                )
            return self._route(index, request, fingerprint, now)
        # Keyed object operations.
        index = self.shard_index(request.key)
        response = self._route(index, request, fingerprint, now)
        if response.operation_id:
            self._opid_shard[response.operation_id] = index
        return response

    def _route(
        self, index: int, request: Request, fingerprint: str, now: float
    ) -> Response:
        if self.admission is not None:
            # Per-shard gate at the single routing funnel.  Shedding
            # happens before the shard sees the request, so a shed
            # broadcast leg (e.g. put_policy) is retry-safe: policy ids
            # are content hashes and re-installation is idempotent.
            decision = self.admission[index].check(request, fingerprint, now)
            if not decision.admitted:
                return decision.to_response()
        self.routed[index] += 1
        return self.shards[index].handle(request, fingerprint, now)

    # -- policies --------------------------------------------------------------------

    def _broadcast_policy(
        self, request: Request, fingerprint: str, now: float
    ) -> Response:
        responses = [
            self._route(index, request, fingerprint, now)
            for index in range(len(self.shards))
        ]
        failed = next((r for r in responses if not r.ok), None)
        if failed is not None:
            return failed
        ids = {response.policy_id for response in responses}
        if len(ids) != 1:  # pragma: no cover - content hash guarantees this
            raise RequestError("shards disagree on policy identity")
        return responses[0]

    # -- transactions ---------------------------------------------------------------------

    def _tx_keyed(
        self, request: Request, fingerprint: str, now: float
    ) -> Response:
        bound = self._txid_shard.get(request.txid)
        if bound is None:
            return Response(
                status=TransactionError.status,
                error=f"no transaction {request.txid!r}",
            )
        key_shard = self.shard_index(request.key)
        if bound == -1:
            # First keyed op: create the real transaction on the key's
            # shard and rebind the public txid to the shard's txid.
            create = self._route(
                key_shard, Request(method="create_tx"), fingerprint, now
            )
            self._txid_shard[request.txid] = key_shard
            self._txid_shard[f"real:{request.txid}"] = create.txid  # type: ignore[assignment]
        elif key_shard != bound:
            return Response(
                status=TransactionError.status,
                error=(
                    f"cross-shard transaction: {request.key!r} maps to "
                    f"shard {key_shard}, transaction bound to {bound}"
                ),
            )
        return self._forward_tx(request, fingerprint, now)

    def _tx_routed(
        self, request: Request, fingerprint: str, now: float
    ) -> Response:
        bound = self._txid_shard.get(request.txid)
        if bound is None:
            return Response(
                status=TransactionError.status,
                error=f"no transaction {request.txid!r}",
            )
        if bound == -1:
            # Never touched a key: commit/abort of an empty transaction.
            return Response(status=200, txid=request.txid)
        return self._forward_tx(request, fingerprint, now)

    def _forward_tx(
        self, request: Request, fingerprint: str, now: float
    ) -> Response:
        index = self._txid_shard[request.txid]
        real_txid = self._txid_shard[f"real:{request.txid}"]
        forwarded = Request(
            method=request.method,
            key=request.key,
            value=request.value,
            policy_id=request.policy_id,
            txid=real_txid,  # type: ignore[arg-type]
        )
        response = self._route(index, forwarded, fingerprint, now)
        response.txid = request.txid  # present the public id
        return response

    # -- aggregate stats ------------------------------------------------------------

    def total_requests(self) -> int:
        return sum(self.routed)

    def admission_snapshot(self) -> list[dict]:
        """Per-shard admission state, empty when admission is off."""
        if self.admission is None:
            return []
        return [controller.snapshot() for controller in self.admission]
