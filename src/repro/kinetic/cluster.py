"""A managed set of Kinetic drives.

The Pesos controller is configured with a static list of drives
(§3.1); replication placement walks this list deterministically
(§4.5).  :class:`DriveCluster` owns the drives, wires up peer links
for P2P push, and hands out authenticated clients.
"""

from __future__ import annotations

from repro.crypto.certs import CertificateAuthority, TrustStore
from repro.errors import ConfigurationError, DriveOffline
from repro.kinetic.client import KineticClient
from repro.kinetic.drive import KineticDrive


class DriveCluster:
    """Creates and tracks a fleet of drives with a shared identity CA."""

    def __init__(
        self,
        num_drives: int,
        capacity_bytes: int = 4 * 1024**4,
        identity_ca: CertificateAuthority | None = None,
    ):
        if num_drives < 1:
            raise ConfigurationError("cluster needs at least one drive")
        self.identity_ca = identity_ca
        self.drives: list[KineticDrive] = [
            KineticDrive(
                drive_id=f"disk-{index}",
                capacity_bytes=capacity_bytes,
                identity_ca=identity_ca,
            )
            for index in range(num_drives)
        ]
        for drive in self.drives:
            for peer in self.drives:
                if peer is not drive:
                    drive.register_peer(peer)

    def __len__(self) -> int:
        return len(self.drives)

    def __iter__(self):
        return iter(self.drives)

    def drive(self, index: int) -> KineticDrive:
        return self.drives[index]

    def online_drives(self) -> list[KineticDrive]:
        return [drive for drive in self.drives if drive.online]

    def trust_store(self) -> TrustStore | None:
        """Trust store accepting this cluster's drive certificates."""
        if self.identity_ca is None:
            return None
        store = TrustStore()
        store.add(self.identity_ca)
        return store

    def connect_all(
        self,
        identity: str,
        hmac_key: bytes,
        verify_certificates: bool = True,
        now: float = 0.0,
        allow_degraded: bool = False,
        min_online: int = 1,
        retry_policy=None,
        telemetry=None,
        interceptor=None,
    ) -> list[KineticClient]:
        """Open one authenticated client per drive.

        By default raises :class:`DriveOffline` if any drive is down —
        bootstrap requires exclusive control of the full configured
        set.  With ``allow_degraded`` a controller can start on a
        partial fleet: clients are created for offline drives too (the
        store's failover handles them), but fewer than ``min_online``
        live drives — the read quorum — still refuses to bootstrap.

        ``retry_policy`` and ``telemetry`` are handed to every client;
        retry jitter is seeded per drive index so degraded runs stay
        reproducible.  ``interceptor`` installs a shared data-path hook
        on every client (the concurrent request engine's preemption
        point; see :class:`repro.core.engine.ConcurrentEngine`).
        """
        online = [drive for drive in self.drives if drive.online]
        if not allow_degraded:
            for drive in self.drives:
                if not drive.online:
                    raise DriveOffline(
                        f"{drive.drive_id} offline during connect"
                    )
        elif len(online) < max(1, min_online):
            raise DriveOffline(
                f"only {len(online)}/{len(self.drives)} drives online; "
                f"need {max(1, min_online)} even for degraded bootstrap"
            )
        trust = self.trust_store() if verify_certificates else None
        return [
            KineticClient(
                drive=drive,
                identity=identity,
                hmac_key=hmac_key,
                trust_store=trust,
                now=now,
                retry_policy=retry_policy,
                retry_seed=index,
                telemetry=telemetry,
                interceptor=interceptor,
            )
            for index, drive in enumerate(self.drives)
        ]
