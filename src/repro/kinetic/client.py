"""Kinetic client library (the Seagate C library stand-in).

The Pesos controller talks to drives exclusively through this client.
It keeps a per-connection sequence number, HMAC-signs every request,
verifies the HMAC on every response (mutual authentication), checks
the drive's identity certificate on connect (drive-replacement
detection, §2.4), and offers both synchronous calls and an
asynchronous pipeline with a bounded pending-request window — the
paper's §4.3 rework of pipe-based synchronization into concurrent data
structures.
"""

from __future__ import annotations

import random
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.crypto.certs import TrustStore
from repro.errors import (
    CertificateError,
    IntegrityError,
    KineticAuthError,
    KineticError,
    KineticNotFound,
    KineticVersionMismatch,
)
from repro.kinetic.drive import KineticDrive, Role
from repro.kinetic.protocol import Message, MessageType, StatusCode
from repro.kinetic.retry import RetryPolicy
from repro.telemetry import NULL_TELEMETRY


def _estimate_size(message: Message) -> int:
    """Approximate wire size without encoding (fast-path accounting)."""
    size = 64  # header, hmac, framing
    for key, value in message.body.items():
        size += len(key) + 4
        if isinstance(value, (bytes, str)):
            size += len(value)
        elif isinstance(value, list):
            size += sum(
                len(item) if isinstance(item, (bytes, str)) else 8
                for item in value
            )
        else:
            size += 8
    return size


@dataclass
class PendingRequest:
    """An async request waiting for its response."""

    sequence: int
    request: Message
    callback: Callable[[Message], None] | None = None
    response: Message | None = None

    @property
    def done(self) -> bool:
        return self.response is not None


class KineticClient:
    """A mutually-authenticated connection to one Kinetic drive."""

    def __init__(
        self,
        drive: KineticDrive,
        identity: str,
        hmac_key: bytes,
        trust_store: TrustStore | None = None,
        now: float = 0.0,
        max_pending: int = 64,
        wire_codec: bool = True,
        retry_policy: RetryPolicy | None = None,
        retry_seed: int = 0,
        sleeper: Callable[[float], None] | None = None,
        telemetry=None,
        interceptor: Callable[..., Any] | None = None,
    ):
        self.drive = drive
        self.identity = identity
        self._key = hmac_key
        self._sequence = 0
        #: When set, the data-path operations (``get``/``put``/
        #: ``delete``) are routed through ``interceptor(client, op,
        #: args, kwargs)`` instead of executing inline.  The concurrent
        #: request engine uses this to suspend the calling green thread
        #: and submit the call on the async syscall interface; the
        #: interceptor executes the real call via :meth:`direct`.
        self.interceptor = interceptor
        #: When False, frames skip the byte-level encode/decode round
        #: trip (messages stay signed and HMAC-verified).  Benchmarks
        #: use this to keep the functional hot path cheap; wire sizes
        #: are then estimated from message contents.
        self.wire_codec = wire_codec
        self._pending: deque[PendingRequest] = deque()
        self.max_pending = max_pending
        self.requests_sent = 0
        self.bytes_on_wire = 0
        #: Transient-error retry schedule; None disables retrying.
        #: Backoff is accounted in ``retry_delay_seconds`` (virtual
        #: time) and optionally fed to ``sleeper`` — the synchronous
        #: API never blocks on its own.
        self.retry_policy = retry_policy
        self._retry_rng = random.Random(retry_seed)
        self._sleeper = sleeper
        self.retries = 0
        self.retry_delay_seconds = 0.0
        self.telemetry = telemetry or NULL_TELEMETRY
        self._m_retries = self.telemetry.counter(
            "pesos_drive_retries_total",
            "Kinetic requests retried after a transient error, by drive "
            "and error class.",
            ("drive", "error"),
        )
        if trust_store is not None:
            certificate = drive.certificate
            if certificate is None:
                raise CertificateError(
                    f"drive {drive.drive_id} has no identity certificate"
                )
            trust_store.verify(certificate, now)

    # -- plumbing -----------------------------------------------------------

    def _next_message(self, message_type: MessageType, body: dict) -> Message:
        self._sequence += 1
        message = Message(
            message_type=message_type,
            identity=self.identity,
            sequence=self._sequence,
            body=body,
        )
        return message.sign(self._key)

    def _roundtrip(self, message_type: MessageType, body: dict) -> Message:
        """Send one request (retrying transient errors) and validate."""
        request = self._next_message(message_type, body)
        policy = self.retry_policy
        attempt = 1
        while True:
            try:
                response = self._exchange(request)
                break
            except KineticError as exc:
                if (
                    policy is None
                    or attempt >= policy.max_attempts
                    or not isinstance(exc, policy.retry_on)
                ):
                    raise
                delay = policy.delay(attempt, self._retry_rng)
                attempt += 1
                self.retries += 1
                self.retry_delay_seconds += delay
                self._m_retries.labels(
                    self.drive.drive_id, type(exc).__name__
                ).inc()
                if self._sleeper is not None:
                    self._sleeper(delay)
        self._validate(request, response)
        return response

    def _exchange(self, request: Message) -> Message:
        """One wire round trip (no retrying, no status validation)."""
        self.requests_sent += 1
        if self.wire_codec:
            # Encode/decode both ways: the real library serializes
            # through protobuf; doing so keeps the wire format honest.
            wire = request.encode()
            self.bytes_on_wire += len(wire)
            response = self.drive.handle(Message.decode(wire))
            response_wire = response.encode()
            self.bytes_on_wire += len(response_wire)
            return Message.decode(response_wire)
        self.bytes_on_wire += _estimate_size(request)
        response = self.drive.handle(request)
        self.bytes_on_wire += _estimate_size(response)
        return response

    def _validate(self, request: Message, response: Message) -> Message:
        if response.status == StatusCode.HMAC_FAILURE:
            raise KineticAuthError(
                f"drive rejected identity {self.identity!r}: "
                f"{response.status_message}"
            )
        if not response.verify(self._key):
            raise IntegrityError("response HMAC invalid (spoofed drive?)")
        if response.sequence != request.sequence:
            raise KineticError("response sequence mismatch")
        if response.status == StatusCode.NOT_AUTHORIZED:
            raise KineticAuthError(response.status_message)
        if response.status == StatusCode.VERSION_MISMATCH:
            raise KineticVersionMismatch(response.status_message)
        if response.status == StatusCode.NOT_FOUND:
            raise KineticNotFound(response.status_message or "key not found")
        if response.status != StatusCode.SUCCESS:
            raise KineticError(
                f"{response.status.name}: {response.status_message}"
            )
        return response

    # -- synchronous API -------------------------------------------------------

    def direct(self, op: str, *args: Any, **kwargs: Any) -> Any:
        """Execute a data-path op inline, bypassing the interceptor."""
        return getattr(self, f"_{op}")(*args, **kwargs)

    def _routed(self, op: str, *args: Any, **kwargs: Any) -> Any:
        if self.interceptor is not None:
            return self.interceptor(self, op, args, kwargs)
        return getattr(self, f"_{op}")(*args, **kwargs)

    def put(
        self,
        key: bytes,
        value: bytes,
        db_version: bytes = b"",
        new_version: bytes | None = None,
        force: bool = False,
        batch: int | None = None,
    ) -> bytes | None:
        """Store ``value``; returns the new dbVersion.

        With ``batch`` set, the operation is buffered on the drive
        until :meth:`end_batch` commits it (returns None).
        """
        return self._routed(
            "put", key, value, db_version=db_version,
            new_version=new_version, force=force, batch=batch,
        )

    def _put(
        self,
        key: bytes,
        value: bytes,
        db_version: bytes = b"",
        new_version: bytes | None = None,
        force: bool = False,
        batch: int | None = None,
    ) -> bytes | None:
        body: dict[str, Any] = {
            "key": key,
            "value": value,
            "db_version": db_version,
            "force": force,
        }
        if new_version is not None:
            body["new_version"] = new_version
        if batch is not None:
            body["batch"] = batch
        response = self._roundtrip(MessageType.PUT, body)
        return response.body.get("new_version")

    def get(self, key: bytes) -> tuple[bytes, bytes]:
        """Fetch ``key``; returns ``(value, db_version)``."""
        return self._routed("get", key)

    def _get(self, key: bytes) -> tuple[bytes, bytes]:
        response = self._roundtrip(MessageType.GET, {"key": key})
        return response.body["value"], response.body["db_version"]

    def get_version(self, key: bytes) -> bytes:
        response = self._roundtrip(MessageType.GETVERSION, {"key": key})
        return response.body["db_version"]

    def delete(
        self,
        key: bytes,
        db_version: bytes = b"",
        force: bool = False,
        batch: int | None = None,
    ) -> None:
        self._routed(
            "delete", key, db_version=db_version, force=force, batch=batch
        )

    def _delete(
        self,
        key: bytes,
        db_version: bytes = b"",
        force: bool = False,
        batch: int | None = None,
    ) -> None:
        body: dict[str, Any] = {
            "key": key, "db_version": db_version, "force": force,
        }
        if batch is not None:
            body["batch"] = batch
        self._roundtrip(MessageType.DELETE, body)

    def get_next(self, key: bytes) -> tuple[bytes, bytes, bytes]:
        response = self._roundtrip(MessageType.GETNEXT, {"key": key})
        return (
            response.body["key"],
            response.body["value"],
            response.body["db_version"],
        )

    def get_previous(self, key: bytes) -> tuple[bytes, bytes, bytes]:
        response = self._roundtrip(MessageType.GETPREVIOUS, {"key": key})
        return (
            response.body["key"],
            response.body["value"],
            response.body["db_version"],
        )

    def get_key_range(
        self,
        start_key: bytes = b"",
        end_key: bytes = b"\xff" * 32,
        max_returned: int = 200,
        start_inclusive: bool = True,
        end_inclusive: bool = True,
        reverse: bool = False,
    ) -> list[bytes]:
        response = self._roundtrip(
            MessageType.GETKEYRANGE,
            {
                "start_key": start_key,
                "end_key": end_key,
                "max_returned": max_returned,
                "start_inclusive": start_inclusive,
                "end_inclusive": end_inclusive,
                "reverse": reverse,
            },
        )
        return response.body["keys"]

    def set_security(self, accounts: list[tuple[str, bytes, Role]]) -> None:
        """Replace the drive's account table."""
        encoded = [
            [identity, key, roles.value] for identity, key, roles in accounts
        ]
        self._roundtrip(MessageType.SECURITY, {"accounts": encoded})

    def setup(self, cluster_version: int | None = None, erase: bool = False) -> None:
        body: dict[str, Any] = {"erase": erase}
        if cluster_version is not None:
            body["cluster_version"] = cluster_version
        self._roundtrip(MessageType.SETUP, body)

    def p2p_push(self, peer_id: str, keys: list[bytes]) -> int:
        """Push keys directly to a peer drive; returns count pushed."""
        response = self._roundtrip(
            MessageType.PEER2PEERPUSH, {"peer": peer_id, "keys": keys}
        )
        return response.body["pushed"]

    def get_log(self) -> dict:
        return self._roundtrip(MessageType.GETLOG, {}).body

    def noop(self) -> None:
        self._roundtrip(MessageType.NOOP, {})

    # -- batches ---------------------------------------------------------------

    def start_batch(self) -> int:
        """Open an atomic batch; returns the drive's batch id."""
        response = self._roundtrip(MessageType.START_BATCH, {})
        return response.body["batch"]

    def end_batch(self, batch: int) -> int:
        """Commit a batch atomically; returns ops applied."""
        response = self._roundtrip(MessageType.END_BATCH, {"batch": batch})
        return response.body["applied"]

    def abort_batch(self, batch: int) -> None:
        self._roundtrip(MessageType.ABORT_BATCH, {"batch": batch})

    def flush(self) -> None:
        self._roundtrip(MessageType.FLUSHALLDATA, {})

    # -- asynchronous pipeline ---------------------------------------------------

    def submit(
        self,
        message_type: MessageType,
        body: dict,
        callback: Callable[[Message], None] | None = None,
    ) -> PendingRequest:
        """Queue a request without waiting for its response."""
        if len(self._pending) >= self.max_pending:
            raise KineticError("pending window full")
        request = self._next_message(message_type, body)
        pending = PendingRequest(
            sequence=request.sequence, request=request, callback=callback
        )
        self._pending.append(pending)
        return pending

    def drain(self, max_responses: int | None = None) -> int:
        """Execute queued requests; returns how many completed.

        Responses complete in submission order (one TCP connection).
        Status failures are recorded on the pending entry rather than
        raised, matching the callback-style C library.
        """
        completed = 0
        while self._pending and (max_responses is None or completed < max_responses):
            pending = self._pending.popleft()
            self.requests_sent += 1
            if self.wire_codec:
                wire = pending.request.encode()
                self.bytes_on_wire += len(wire)
                response = self.drive.handle(Message.decode(wire))
            else:
                self.bytes_on_wire += _estimate_size(pending.request)
                response = self.drive.handle(pending.request)
            pending.response = response
            if pending.callback is not None:
                pending.callback(response)
            completed += 1
        return completed

    @property
    def pending_count(self) -> int:
        return len(self._pending)
