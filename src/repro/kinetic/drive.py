"""A Kinetic drive: ordered keyspace, ACL security, device management.

The drive is the second trusted component of Pesos (after the enclave).
It authenticates every request with the per-identity HMAC key, enforces
role-based ACLs, supports compare-and-swap style *versioned* puts and
deletes, ordered range scans, peer-to-peer push to other drives, and a
SECURITY operation that atomically replaces the account table — the
primitive Pesos uses at bootstrap to lock out every other user,
including the cloud provider.
"""

from __future__ import annotations

import bisect
import enum
import secrets
from dataclasses import dataclass

from repro.crypto.certs import Certificate, CertificateAuthority, KeyPair
from repro.errors import DriveOffline, KineticError
from repro.kinetic.protocol import Message, MessageType, StatusCode


class Role(enum.Flag):
    """Permission roles attachable to a drive identity."""

    READ = enum.auto()
    WRITE = enum.auto()
    DELETE = enum.auto()
    RANGE = enum.auto()
    P2P = enum.auto()
    GETLOG = enum.auto()
    SECURITY = enum.auto()
    SETUP = enum.auto()

    @classmethod
    def all(cls) -> "Role":
        result = cls.READ
        for role in cls:
            result |= role
        return result


@dataclass
class Acl:
    """One identity's credentials and permissions on a drive."""

    identity: str
    hmac_key: bytes
    roles: Role

    @classmethod
    def admin(cls, identity: str, hmac_key: bytes | None = None) -> "Acl":
        return cls(
            identity=identity,
            hmac_key=hmac_key or secrets.token_bytes(32),
            roles=Role.all(),
        )


_REQUIRED_ROLE = {
    MessageType.GET: Role.READ,
    MessageType.GETVERSION: Role.READ,
    MessageType.GETNEXT: Role.RANGE,
    MessageType.GETPREVIOUS: Role.RANGE,
    MessageType.GETKEYRANGE: Role.RANGE,
    MessageType.PUT: Role.WRITE,
    MessageType.DELETE: Role.DELETE,
    MessageType.PEER2PEERPUSH: Role.P2P,
    MessageType.GETLOG: Role.GETLOG,
    MessageType.SECURITY: Role.SECURITY,
    MessageType.SETUP: Role.SETUP,
    MessageType.FLUSHALLDATA: Role.WRITE,
    MessageType.NOOP: Role.READ,
    MessageType.START_BATCH: Role.WRITE,
    MessageType.END_BATCH: Role.WRITE,
    MessageType.ABORT_BATCH: Role.WRITE,
}


@dataclass
class _Entry:
    value: bytes
    version: bytes


@dataclass
class DriveStats:
    """Operation counters surfaced through GETLOG."""

    puts: int = 0
    gets: int = 0
    deletes: int = 0
    range_scans: int = 0
    auth_failures: int = 0
    version_failures: int = 0
    bytes_written: int = 0
    bytes_read: int = 0


class KineticDrive:
    """One Ethernet-attached Kinetic drive.

    The factory-default drive ships with a well-known ``demo`` identity
    (as real Kinetic drives do); deployments are expected to replace it
    via a SECURITY command.
    """

    DEMO_IDENTITY = "demo"
    DEMO_KEY = b"asdfasdf"  # the actual Kinetic factory default secret

    def __init__(
        self,
        drive_id: str,
        capacity_bytes: int = 4 * 1024**4,
        identity_ca: CertificateAuthority | None = None,
    ):
        self.drive_id = drive_id
        self.capacity_bytes = capacity_bytes
        self.cluster_version = 0
        self._entries: dict[bytes, _Entry] = {}
        self._sorted_keys: list[bytes] = []
        self._accounts: dict[str, Acl] = {
            self.DEMO_IDENTITY: Acl(
                identity=self.DEMO_IDENTITY,
                hmac_key=self.DEMO_KEY,
                roles=Role.all(),
            )
        }
        self._online = True
        self._used_bytes = 0
        self.stats = DriveStats()
        self._peers: dict[str, "KineticDrive"] = {}
        #: Open batches: batch id -> list of buffered op messages.
        self._batches: dict[int, list] = {}
        self._next_batch_id = 1
        # Each drive carries a unique identity certificate so replacing
        # the physical drive (a rollback attack) is detectable (§2.4).
        self._identity: KeyPair | None = (
            identity_ca.issue_keypair(f"kinetic-{drive_id}", key_bits=512)
            if identity_ca
            else None
        )

    # -- admin / simulation controls --------------------------------------

    @property
    def online(self) -> bool:
        return self._online

    def fail(self) -> None:
        """Simulate a drive crash (power loss, controller fault)."""
        self._online = False

    def recover(self) -> None:
        self._online = True

    def register_peer(self, drive: "KineticDrive") -> None:
        """Make another drive reachable for PEER2PEERPUSH."""
        self._peers[drive.drive_id] = drive

    @property
    def certificate(self) -> Certificate | None:
        return self._identity.certificate if self._identity else None

    @property
    def key_count(self) -> int:
        return len(self._entries)

    @property
    def used_bytes(self) -> int:
        return self._used_bytes

    def account_key(self, identity: str) -> bytes:
        """HMAC key for ``identity`` (drive-side secret lookup)."""
        acl = self._accounts.get(identity)
        if acl is None:
            raise KineticError(f"no account {identity!r}")
        return acl.hmac_key

    def identities(self) -> list[str]:
        return sorted(self._accounts)

    # -- request handling ---------------------------------------------------

    def handle(self, request: Message) -> Message:
        """Authenticate, authorize, and execute one command."""
        if not self._online:
            raise DriveOffline(f"drive {self.drive_id} is offline")

        acl = self._accounts.get(request.identity)
        if acl is None or not request.verify(acl.hmac_key):
            self.stats.auth_failures += 1
            response = request.make_response(
                StatusCode.HMAC_FAILURE, status_message="authentication failed"
            )
            # Unauthenticated responses are signed with the demo key if
            # present, else left unsigned — the client will notice.
            return response

        required = _REQUIRED_ROLE.get(request.message_type)
        if required is None:
            return self._signed(
                request.make_response(
                    StatusCode.INVALID_REQUEST,
                    status_message=f"unsupported type {request.message_type}",
                ),
                acl,
            )
        if not acl.roles & required:
            return self._signed(
                request.make_response(
                    StatusCode.NOT_AUTHORIZED,
                    status_message=f"missing role {required}",
                ),
                acl,
            )

        # PUT/DELETE carrying a batch id are buffered, not applied.
        if request.message_type in (
            MessageType.PUT, MessageType.DELETE
        ) and request.body.get("batch"):
            return self._signed(self._buffer_batch_op(request), acl)

        handler = getattr(self, f"_op_{request.message_type.name.lower()}")
        return self._signed(handler(request), acl)

    def _signed(self, response: Message, acl: Acl) -> Message:
        return response.sign(acl.hmac_key)

    # -- data operations -----------------------------------------------------

    def _op_put(self, request: Message) -> Message:
        key = request.body["key"]
        value = request.body["value"]
        expected = request.body.get("db_version") or b""
        new_version = request.body.get("new_version") or secrets.token_bytes(8)
        force = bool(request.body.get("force"))

        entry = self._entries.get(key)
        current = entry.version if entry else b""
        if not force and current != expected:
            self.stats.version_failures += 1
            return request.make_response(
                StatusCode.VERSION_MISMATCH,
                status_message="stale dbVersion",
                body={"current_version": current},
            )
        delta = len(value) - (len(entry.value) if entry else 0)
        if self._used_bytes + delta > self.capacity_bytes:
            return request.make_response(
                StatusCode.NO_SPACE, status_message="drive full"
            )
        if entry is None:
            bisect.insort(self._sorted_keys, key)
        self._entries[key] = _Entry(value=value, version=new_version)
        self._used_bytes += delta
        self.stats.puts += 1
        self.stats.bytes_written += len(value)
        return request.make_response(
            StatusCode.SUCCESS, body={"new_version": new_version}
        )

    def _op_get(self, request: Message) -> Message:
        key = request.body["key"]
        entry = self._entries.get(key)
        self.stats.gets += 1
        if entry is None:
            return request.make_response(
                StatusCode.NOT_FOUND, status_message="no such key"
            )
        self.stats.bytes_read += len(entry.value)
        return request.make_response(
            StatusCode.SUCCESS,
            body={"key": key, "value": entry.value, "db_version": entry.version},
        )

    def _op_getversion(self, request: Message) -> Message:
        key = request.body["key"]
        entry = self._entries.get(key)
        if entry is None:
            return request.make_response(StatusCode.NOT_FOUND)
        return request.make_response(
            StatusCode.SUCCESS, body={"db_version": entry.version}
        )

    def _op_delete(self, request: Message) -> Message:
        key = request.body["key"]
        expected = request.body.get("db_version") or b""
        force = bool(request.body.get("force"))
        entry = self._entries.get(key)
        if entry is None:
            return request.make_response(StatusCode.NOT_FOUND)
        if not force and entry.version != expected:
            self.stats.version_failures += 1
            return request.make_response(
                StatusCode.VERSION_MISMATCH, status_message="stale dbVersion"
            )
        del self._entries[key]
        index = bisect.bisect_left(self._sorted_keys, key)
        del self._sorted_keys[index]
        self._used_bytes -= len(entry.value)
        self.stats.deletes += 1
        return request.make_response(StatusCode.SUCCESS)

    def _op_getnext(self, request: Message) -> Message:
        key = request.body["key"]
        index = bisect.bisect_right(self._sorted_keys, key)
        if index >= len(self._sorted_keys):
            return request.make_response(StatusCode.NOT_FOUND)
        next_key = self._sorted_keys[index]
        entry = self._entries[next_key]
        return request.make_response(
            StatusCode.SUCCESS,
            body={
                "key": next_key,
                "value": entry.value,
                "db_version": entry.version,
            },
        )

    def _op_getprevious(self, request: Message) -> Message:
        key = request.body["key"]
        index = bisect.bisect_left(self._sorted_keys, key)
        if index == 0:
            return request.make_response(StatusCode.NOT_FOUND)
        prev_key = self._sorted_keys[index - 1]
        entry = self._entries[prev_key]
        return request.make_response(
            StatusCode.SUCCESS,
            body={
                "key": prev_key,
                "value": entry.value,
                "db_version": entry.version,
            },
        )

    def _op_getkeyrange(self, request: Message) -> Message:
        start = request.body.get("start_key", b"")
        end = request.body.get("end_key", b"\xff" * 32)
        start_inclusive = bool(request.body.get("start_inclusive", True))
        end_inclusive = bool(request.body.get("end_inclusive", True))
        max_returned = int(request.body.get("max_returned", 200))
        reverse = bool(request.body.get("reverse", False))

        if start_inclusive:
            lo = bisect.bisect_left(self._sorted_keys, start)
        else:
            lo = bisect.bisect_right(self._sorted_keys, start)
        if end_inclusive:
            hi = bisect.bisect_right(self._sorted_keys, end)
        else:
            hi = bisect.bisect_left(self._sorted_keys, end)
        keys = self._sorted_keys[lo:hi]
        if reverse:
            keys = keys[::-1]
        keys = keys[:max_returned]
        self.stats.range_scans += 1
        return request.make_response(StatusCode.SUCCESS, body={"keys": keys})

    def _op_noop(self, request: Message) -> Message:
        return request.make_response(StatusCode.SUCCESS)

    def _op_flushalldata(self, request: Message) -> Message:
        # Our keyspace is always durable in-model; flush is a no-op ack.
        return request.make_response(StatusCode.SUCCESS)

    # -- batch operations (atomic multi-op commits) ---------------------------

    def _op_start_batch(self, request: Message) -> Message:
        batch_id = self._next_batch_id
        self._next_batch_id += 1
        self._batches[batch_id] = []
        return request.make_response(
            StatusCode.SUCCESS, body={"batch": batch_id}
        )

    def _buffer_batch_op(self, request: Message) -> Message:
        batch_id = int(request.body["batch"])
        if batch_id not in self._batches:
            return request.make_response(
                StatusCode.INVALID_REQUEST,
                status_message=f"no open batch {batch_id}",
            )
        self._batches[batch_id].append(request)
        return request.make_response(StatusCode.SUCCESS)

    def _op_end_batch(self, request: Message) -> Message:
        """Validate every buffered op, then apply all or none."""
        batch_id = int(request.body["batch"])
        ops = self._batches.pop(batch_id, None)
        if ops is None:
            return request.make_response(
                StatusCode.INVALID_REQUEST,
                status_message=f"no open batch {batch_id}",
            )
        # Phase 1: validation against current state (versions, space).
        space_delta = 0
        staged_versions: dict[bytes, bytes] = {}
        for op in ops:
            key = op.body["key"]
            entry = self._entries.get(key)
            current = staged_versions.get(
                key, entry.version if entry else b""
            )
            expected = op.body.get("db_version") or b""
            if not op.body.get("force") and current != expected:
                self.stats.version_failures += 1
                return request.make_response(
                    StatusCode.VERSION_MISMATCH,
                    status_message=f"batch aborted: stale version for "
                                   f"{key!r}",
                )
            if op.message_type == MessageType.PUT:
                old_size = (
                    len(entry.value) if entry and key not in staged_versions
                    else 0
                )
                space_delta += len(op.body["value"]) - old_size
                staged_versions[key] = (
                    op.body.get("new_version") or secrets.token_bytes(8)
                )
            else:  # DELETE
                if entry is None and key not in staged_versions:
                    return request.make_response(
                        StatusCode.NOT_FOUND,
                        status_message=f"batch aborted: no key {key!r}",
                    )
                staged_versions[key] = b""
        if self._used_bytes + space_delta > self.capacity_bytes:
            return request.make_response(
                StatusCode.NO_SPACE, status_message="batch aborted: full"
            )
        # Phase 2: apply in order.
        for op in ops:
            op.body["force"] = True  # versions were validated above
            if op.message_type == MessageType.PUT:
                if "new_version" not in op.body or not op.body["new_version"]:
                    op.body["new_version"] = staged_versions[op.body["key"]]
                self._op_put(op)
            else:
                self._op_delete(op)
        return request.make_response(
            StatusCode.SUCCESS, body={"applied": len(ops)}
        )

    def _op_abort_batch(self, request: Message) -> Message:
        batch_id = int(request.body["batch"])
        if self._batches.pop(batch_id, None) is None:
            return request.make_response(
                StatusCode.INVALID_REQUEST,
                status_message=f"no open batch {batch_id}",
            )
        return request.make_response(StatusCode.SUCCESS)

    # -- management operations -----------------------------------------------

    def _op_security(self, request: Message) -> Message:
        """Atomically replace the account table (the bootstrap lock-out)."""
        accounts = request.body["accounts"]  # list of [identity, key, roles]
        if not accounts:
            return request.make_response(
                StatusCode.INVALID_REQUEST,
                status_message="refusing to remove every account",
            )
        new_table = {}
        for item in accounts:
            identity, hmac_key, roles_value = item
            new_table[identity] = Acl(
                identity=identity,
                hmac_key=hmac_key,
                roles=Role(roles_value),
            )
        self._accounts = new_table
        return request.make_response(StatusCode.SUCCESS)

    def _op_setup(self, request: Message) -> Message:
        if "cluster_version" in request.body:
            self.cluster_version = int(request.body["cluster_version"])
        if request.body.get("erase"):
            self._entries.clear()
            self._sorted_keys.clear()
            self._used_bytes = 0
        return request.make_response(StatusCode.SUCCESS)

    def _op_peer2peerpush(self, request: Message) -> Message:
        """Copy keys directly to a peer drive (no third-party relay)."""
        peer_id = request.body["peer"]
        keys = request.body["keys"]
        peer = self._peers.get(peer_id)
        if peer is None:
            return request.make_response(
                StatusCode.INVALID_REQUEST,
                status_message=f"unknown peer {peer_id!r}",
            )
        if not peer.online:
            return request.make_response(
                StatusCode.INTERNAL_ERROR,
                status_message=f"peer {peer_id!r} offline",
            )
        pushed = 0
        for key in keys:
            entry = self._entries.get(key)
            if entry is None:
                continue
            peer._entries_put_raw(key, entry.value, entry.version)
            pushed += 1
        return request.make_response(StatusCode.SUCCESS, body={"pushed": pushed})

    def _entries_put_raw(self, key: bytes, value: bytes, version: bytes) -> None:
        entry = self._entries.get(key)
        delta = len(value) - (len(entry.value) if entry else 0)
        if entry is None:
            bisect.insort(self._sorted_keys, key)
        self._entries[key] = _Entry(value=value, version=version)
        self._used_bytes += delta

    def _op_getlog(self, request: Message) -> Message:
        return request.make_response(
            StatusCode.SUCCESS,
            body={
                "drive_id": self.drive_id,
                "capacity_bytes": self.capacity_bytes,
                "used_bytes": self._used_bytes,
                "key_count": len(self._entries),
                "puts": self.stats.puts,
                "gets": self.stats.gets,
                "deletes": self.stats.deletes,
                "auth_failures": self.stats.auth_failures,
            },
        )
