"""Retry policy for the Kinetic client: budgeted backoff with jitter.

Delays are *virtual*: the client accumulates them (and hands them to an
optional sleeper callback) instead of blocking the process, so the
bench harness can charge retries to simulated time and the test suite
never sleeps.  Jitter comes from the client's own seeded RNG, keeping
chaos runs reproducible.

Only :class:`~repro.errors.TransientIOError` is retried by default: a
drop happens before the drive applies the operation, so a retry can
never double-apply.  ``DriveOffline`` is deliberately *not* in the
default set — waiting out a dead drive is the object store's job
(failover plus circuit breaker), not the connection's.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import TransientIOError


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff schedule for transient drive errors."""

    #: Total tries, including the first attempt.
    max_attempts: int = 4
    base_delay: float = 0.002
    multiplier: float = 2.0
    max_delay: float = 0.250
    #: Fractional jitter added on top of the exponential delay.
    jitter: float = 0.5
    #: Exception classes worth retrying.
    retry_on: tuple = (TransientIOError,)

    def delay(self, attempt: int, rng: random.Random | None) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        base = min(
            self.max_delay,
            self.base_delay * self.multiplier ** (attempt - 1),
        )
        if not self.jitter:
            return base
        return base * (1.0 + self.jitter * rng.random())


#: Policy that disables retrying while keeping the code path uniform.
NO_RETRY = RetryPolicy(max_attempts=1)
