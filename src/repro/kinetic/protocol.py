"""The Kinetic wire protocol (protobuf stand-in).

Real Kinetic drives speak Google Protocol Buffers over TCP with a
9-byte frame header.  We reproduce the same structure with our own
tag/length/value binary encoding (:func:`encode_fields` /
:func:`decode_fields`): a :class:`Message` carries a command header
(identity, sequence, type), a body of operation parameters, and an
HMAC-SHA256 over the encoded command keyed by the identity's secret —
which is exactly how Kinetic authenticates requests.

Frame layout::

    magic 'K' | varint(len(command)) | command | varint(len(hmac)) | hmac
"""

from __future__ import annotations

import enum
import hmac as hmac_mod
import hashlib
import io
from dataclasses import dataclass, field

from repro.errors import KineticError
from repro.util.varint import read_varint, write_varint

_MAGIC = ord("K")


class MessageType(enum.IntEnum):
    """Command types, mirroring the Kinetic protocol's MessageType."""

    GET = 1
    GET_RESPONSE = 2
    PUT = 3
    PUT_RESPONSE = 4
    DELETE = 5
    DELETE_RESPONSE = 6
    GETNEXT = 7
    GETNEXT_RESPONSE = 8
    GETPREVIOUS = 9
    GETPREVIOUS_RESPONSE = 10
    GETKEYRANGE = 11
    GETKEYRANGE_RESPONSE = 12
    GETVERSION = 13
    GETVERSION_RESPONSE = 14
    SECURITY = 15
    SECURITY_RESPONSE = 16
    SETUP = 17
    SETUP_RESPONSE = 18
    PEER2PEERPUSH = 19
    PEER2PEERPUSH_RESPONSE = 20
    NOOP = 21
    NOOP_RESPONSE = 22
    GETLOG = 23
    GETLOG_RESPONSE = 24
    FLUSHALLDATA = 25
    FLUSHALLDATA_RESPONSE = 26
    START_BATCH = 27
    START_BATCH_RESPONSE = 28
    END_BATCH = 29
    END_BATCH_RESPONSE = 30
    ABORT_BATCH = 31
    ABORT_BATCH_RESPONSE = 32


class StatusCode(enum.IntEnum):
    """Response status codes."""

    SUCCESS = 0
    NOT_FOUND = 1
    VERSION_MISMATCH = 2
    NOT_AUTHORIZED = 3
    HMAC_FAILURE = 4
    INTERNAL_ERROR = 5
    NOT_ATTEMPTED = 6
    INVALID_REQUEST = 7
    NO_SPACE = 8


_RESPONSE_OF = {
    MessageType.GET: MessageType.GET_RESPONSE,
    MessageType.PUT: MessageType.PUT_RESPONSE,
    MessageType.DELETE: MessageType.DELETE_RESPONSE,
    MessageType.GETNEXT: MessageType.GETNEXT_RESPONSE,
    MessageType.GETPREVIOUS: MessageType.GETPREVIOUS_RESPONSE,
    MessageType.GETKEYRANGE: MessageType.GETKEYRANGE_RESPONSE,
    MessageType.GETVERSION: MessageType.GETVERSION_RESPONSE,
    MessageType.SECURITY: MessageType.SECURITY_RESPONSE,
    MessageType.SETUP: MessageType.SETUP_RESPONSE,
    MessageType.PEER2PEERPUSH: MessageType.PEER2PEERPUSH_RESPONSE,
    MessageType.NOOP: MessageType.NOOP_RESPONSE,
    MessageType.GETLOG: MessageType.GETLOG_RESPONSE,
    MessageType.FLUSHALLDATA: MessageType.FLUSHALLDATA_RESPONSE,
    MessageType.START_BATCH: MessageType.START_BATCH_RESPONSE,
    MessageType.END_BATCH: MessageType.END_BATCH_RESPONSE,
    MessageType.ABORT_BATCH: MessageType.ABORT_BATCH_RESPONSE,
}


def response_type(request_type: MessageType) -> MessageType:
    """The response MessageType paired with a request type."""
    try:
        return _RESPONSE_OF[request_type]
    except KeyError:
        raise KineticError(f"{request_type!r} is not a request type") from None


# ---------------------------------------------------------------------------
# TLV field encoding
# ---------------------------------------------------------------------------

_TYPE_INT = 0
_TYPE_BYTES = 1
_TYPE_STR = 2
_TYPE_LIST = 3
_TYPE_NONE = 4


def _read_exact(stream: io.BytesIO, length: int, what: str) -> bytes:
    """Read exactly ``length`` bytes, validating against the buffer.

    Length fields are attacker-controlled varints up to 2^64; checking
    them against the remaining payload prevents huge-allocation and
    index-overflow attacks (found by fuzzing).
    """
    remaining = stream.getbuffer().nbytes - stream.tell()
    if length > remaining:
        raise KineticError(
            f"{what} length {length} exceeds remaining payload {remaining}"
        )
    return stream.read(length)


def _write_value(stream: io.BytesIO, value) -> None:
    if value is None:
        stream.write(bytes([_TYPE_NONE]))
    elif isinstance(value, bool):
        # bools encode as ints (before the int check: bool is an int).
        stream.write(bytes([_TYPE_INT]))
        write_varint(stream, int(value))
    elif isinstance(value, int):
        if value < 0:
            raise KineticError(f"cannot encode negative int {value}")
        stream.write(bytes([_TYPE_INT]))
        write_varint(stream, value)
    elif isinstance(value, bytes):
        stream.write(bytes([_TYPE_BYTES]))
        write_varint(stream, len(value))
        stream.write(value)
    elif isinstance(value, str):
        raw = value.encode()
        stream.write(bytes([_TYPE_STR]))
        write_varint(stream, len(raw))
        stream.write(raw)
    elif isinstance(value, (list, tuple)):
        stream.write(bytes([_TYPE_LIST]))
        write_varint(stream, len(value))
        for item in value:
            _write_value(stream, item)
    else:
        raise KineticError(f"cannot encode field of type {type(value).__name__}")


def _read_value(stream: io.BytesIO):
    type_byte = stream.read(1)
    if not type_byte:
        raise KineticError("truncated field value")
    kind = type_byte[0]
    if kind == _TYPE_NONE:
        return None
    if kind == _TYPE_INT:
        return read_varint(stream)
    if kind in (_TYPE_BYTES, _TYPE_STR):
        length = read_varint(stream)
        raw = _read_exact(stream, length, "field payload")
        if kind == _TYPE_BYTES:
            return raw
        try:
            return raw.decode()
        except UnicodeDecodeError as exc:
            raise KineticError(f"invalid string field: {exc}") from exc
    if kind == _TYPE_LIST:
        count = read_varint(stream)
        remaining = stream.getbuffer().nbytes - stream.tell()
        if count > remaining:  # each element needs >= 1 byte
            raise KineticError("list count exceeds remaining payload")
        return [_read_value(stream) for _ in range(count)]
    raise KineticError(f"unknown field type {kind}")


def encode_fields(fields: dict) -> bytes:
    """Encode a flat dict of fields deterministically (sorted keys)."""
    stream = io.BytesIO()
    write_varint(stream, len(fields))
    for key in sorted(fields):
        raw_key = key.encode()
        write_varint(stream, len(raw_key))
        stream.write(raw_key)
        _write_value(stream, fields[key])
    return stream.getvalue()


def decode_fields(data: bytes) -> dict:
    """Inverse of :func:`encode_fields`."""
    stream = io.BytesIO(data)
    count = read_varint(stream)
    if count > len(data):
        raise KineticError("field count exceeds payload")
    fields = {}
    for _ in range(count):
        key_len = read_varint(stream)
        raw_key = _read_exact(stream, key_len, "field key")
        try:
            key = raw_key.decode()
        except UnicodeDecodeError as exc:
            raise KineticError(f"invalid field key: {exc}") from exc
        fields[key] = _read_value(stream)
    return fields


# ---------------------------------------------------------------------------
# Messages
# ---------------------------------------------------------------------------

@dataclass
class Message:
    """One Kinetic command: header + body, HMAC-authenticated."""

    message_type: MessageType
    identity: str
    sequence: int
    body: dict = field(default_factory=dict)
    status: StatusCode = StatusCode.SUCCESS
    status_message: str = ""
    hmac: bytes = b""
    _command_cache: bytes | None = field(
        default=None, repr=False, compare=False
    )

    def command_bytes(self) -> bytes:
        """The canonical encoding covered by the HMAC (always fresh)."""
        return encode_fields(
            {
                "_type": int(self.message_type),
                "_identity": self.identity,
                "_sequence": self.sequence,
                "_status": int(self.status),
                "_status_message": self.status_message,
                "_body": encode_fields(self.body),
            }
        )

    def sign(self, key: bytes) -> "Message":
        """Attach an HMAC-SHA256 computed with ``key``.

        The canonical encoding is cached for the follow-up
        :meth:`encode`; :meth:`verify` always re-encodes so tampering
        after signing is still caught.
        """
        self._command_cache = self.command_bytes()
        self.hmac = hmac_mod.new(
            key, self._command_cache, hashlib.sha256
        ).digest()
        return self

    def verify(self, key: bytes) -> bool:
        """Check the attached HMAC against ``key``."""
        expected = hmac_mod.new(key, self.command_bytes(), hashlib.sha256).digest()
        return hmac_mod.compare_digest(expected, self.hmac)

    def encode(self) -> bytes:
        """Serialize to a framed wire blob."""
        command = (
            self._command_cache
            if self._command_cache is not None
            else self.command_bytes()
        )
        stream = io.BytesIO()
        stream.write(bytes([_MAGIC]))
        write_varint(stream, len(command))
        stream.write(command)
        write_varint(stream, len(self.hmac))
        stream.write(self.hmac)
        return stream.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "Message":
        """Parse a framed wire blob."""
        stream = io.BytesIO(data)
        magic = stream.read(1)
        if not magic or magic[0] != _MAGIC:
            raise KineticError("bad frame magic")
        command_len = read_varint(stream)
        command = _read_exact(stream, command_len, "command")
        hmac_len = read_varint(stream)
        mac = _read_exact(stream, hmac_len, "hmac")
        outer = decode_fields(command)
        try:
            return cls(
                message_type=MessageType(outer["_type"]),
                identity=outer["_identity"],
                sequence=outer["_sequence"],
                status=StatusCode(outer["_status"]),
                status_message=outer["_status_message"],
                body=decode_fields(outer["_body"]),
                hmac=mac,
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise KineticError(f"malformed command: {exc}") from exc

    def make_response(
        self,
        status: StatusCode,
        body: dict | None = None,
        status_message: str = "",
    ) -> "Message":
        """Build the (unsigned) response paired with this request."""
        return Message(
            message_type=response_type(self.message_type),
            identity=self.identity,
            sequence=self.sequence,
            body=body or {},
            status=status,
            status_message=status_message,
        )

    @property
    def ok(self) -> bool:
        return self.status == StatusCode.SUCCESS

    def wire_size(self) -> int:
        """Encoded size in bytes (used for virtual-time transfer costs)."""
        return len(self.encode())
