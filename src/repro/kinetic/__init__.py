"""Kinetic Open Storage substrate.

Kinetic drives (§2.2) bundle an HDD with a SoC and an Ethernet port and
expose a key-value interface directly on the network; the drive itself
authenticates every request via per-identity HMAC keys and holds an
X.509 identity certificate so replacement (a rollback attack at drive
granularity) is detectable.

This package reproduces that stack:

- :mod:`repro.kinetic.protocol` — the framed, HMAC-authenticated wire
  protocol (a Google-protobuf stand-in using tag/length/value fields).
- :mod:`repro.kinetic.drive` — a full drive: ordered keyspace,
  versioned puts, range scans, user accounts with ACL roles, security
  (account replacement, the lock-out Pesos performs at bootstrap),
  peer-to-peer push, and device log/stats.
- :mod:`repro.kinetic.client` — the client library: connection +
  sequence numbers, synchronous calls and an asynchronous pipeline with
  a pending-request window (the paper's ring-buffer redesign, §4.3).
- :mod:`repro.kinetic.cluster` — a named set of drives with failover.
- :mod:`repro.kinetic.timing` — virtual-time service models for the two
  evaluation backends: the in-memory Kinetic *simulator* and the
  mechanical Kinetic *HDD* (seek + rotation + transfer).
"""

from repro.kinetic.client import KineticClient
from repro.kinetic.cluster import DriveCluster
from repro.kinetic.drive import Acl, KineticDrive, Role
from repro.kinetic.protocol import Message, MessageType, StatusCode
from repro.kinetic.timing import DriveTiming, HddTiming, SimulatorTiming

__all__ = [
    "Acl",
    "DriveCluster",
    "DriveTiming",
    "HddTiming",
    "KineticClient",
    "KineticDrive",
    "Message",
    "MessageType",
    "Role",
    "SimulatorTiming",
    "StatusCode",
]
