"""Virtual-time service models for Kinetic storage backends.

The paper evaluates against two backends: the Seagate Kinetic disk
*simulator* (a Java process keeping everything in memory, collocated
with the workload generator) and the physical Kinetic *HDD* whose SoC
runs LevelDB over rotating media.

Measured behaviour this module encodes:

- The simulator is CPU-bound and fast: tens of microseconds per
  operation on a Xeon, scaling with payload size at memory bandwidth.
  Its per-operation latency floor is what makes the paper's
  single-client latency ~0.75-0.86 ms (§6.2, an acknowledged
  implementation artifact of the simulator).
- The HDD is dominated by its weak SoC (protobuf + LevelDB on an ARM
  core, ~1 ms/op) rather than raw seeks for the paper's 100 k x 1 KB
  working set, which fits the drive cache; media costs appear for
  cache-missing reads and periodic sync/compaction on writes.  A
  dedicated drive therefore delivers ~800 IOP/s (Fig. 5), three drives
  behind the shared Ember-enclosure uplink ~1.1 kIOP/s (Fig. 3).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

OP_READ = "read"
OP_WRITE = "write"
OP_DELETE = "delete"
OP_RANGE = "range"


@dataclass
class DriveTiming:
    """Base class: fixed service time per operation (for tests)."""

    fixed_seconds: float = 1e-3
    #: Concurrent operations the backend can service (queue capacity).
    concurrency: int = 1

    def service_time(self, op: str, nbytes: int, rng: random.Random) -> float:
        return self.fixed_seconds


@dataclass
class SimulatorTiming(DriveTiming):
    """The in-memory Kinetic disk simulator.

    ``base_seconds`` covers protobuf decode + map update on the host
    CPU; ``per_byte`` is memory-bandwidth copying; ``first_byte_floor``
    is the constant simulator bookkeeping that dominates single-client
    latency.
    """

    base_seconds: float = 24e-6
    per_byte: float = 0.4e-9
    jitter: float = 0.10
    concurrency: int = 4

    def service_time(self, op: str, nbytes: int, rng: random.Random) -> float:
        base = self.base_seconds + nbytes * self.per_byte
        if op == OP_RANGE:
            base *= 2.0
        return base * (1.0 + self.jitter * rng.random())


@dataclass
class HddTiming(DriveTiming):
    """A physical Kinetic HDD (SoC + LevelDB + rotating media).

    Defaults target ~820 IOP/s for the YCSB-A 1 KB mix when the drive
    is dedicated to one controller (Fig. 5's per-drive rate).
    """

    #: SoC compute per operation (protobuf, LevelDB, network stack).
    soc_seconds: float = 0.54e-3
    #: Per-byte SoC/media transfer cost.
    per_byte: float = 8.0e-9
    #: Probability a read misses the drive cache and pays a seek.
    read_miss_rate: float = 0.015
    #: Probability a write triggers a log sync / compaction stall.
    write_sync_rate: float = 0.015
    #: Average seek + rotational latency of the 5900-RPM mechanism.
    seek_seconds: float = 10e-3
    jitter: float = 0.15
    concurrency: int = 1

    def service_time(self, op: str, nbytes: int, rng: random.Random) -> float:
        time = self.soc_seconds + nbytes * self.per_byte
        if op == OP_READ and rng.random() < self.read_miss_rate:
            time += self.seek_seconds
        elif op in (OP_WRITE, OP_DELETE) and rng.random() < self.write_sync_rate:
            time += self.seek_seconds
        elif op == OP_RANGE:
            time += self.soc_seconds  # extra LevelDB iteration work
        return time * (1.0 + self.jitter * rng.random())
