"""Evaluation primitives shared by predicates and the interpreter.

Implements Guardat's "compares or sets" argument semantics: a variable
argument that is unbound when a predicate runs gets *bound* to the
predicate's observed value; a bound variable (or literal) must *equal*
it.  Tuple arguments unify element-wise the same way.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PolicyError
from repro.policy.ast import IntValue, NullValue, StrValue, TupleValue, Value


class EvalError(PolicyError):
    """A clause failed structurally (unbound arithmetic, bad types).

    Raising this aborts only the current clause — other disjuncts are
    still tried — mirroring logic-language failure.
    """


@dataclass(frozen=True)
class Unbound:
    """A variable slot with no binding yet."""

    slot: int


@dataclass(frozen=True)
class TuplePattern:
    """A tuple argument whose elements may contain unbound slots."""

    name: str
    elems: tuple  # of Value | Unbound | TuplePattern


class Bindings:
    """Variable slot assignments for one clause evaluation."""

    def __init__(self, num_slots: int, names: list[str] | None = None):
        self._values: list[Value | None] = [None] * num_slots
        self._names = names or [f"v{i}" for i in range(num_slots)]

    def lookup(self, slot: int) -> "Value | Unbound":
        value = self._values[slot]
        return value if value is not None else Unbound(slot)

    def bind(self, slot: int, value: Value) -> None:
        if self._values[slot] is not None:
            raise EvalError(
                f"variable {self._names[slot]!r} already bound"
            )
        self._values[slot] = value

    def snapshot(self) -> dict:
        """Bound variables by name (for diagnostics and tests)."""
        return {
            self._names[i]: value
            for i, value in enumerate(self._values)
            if value is not None
        }


def compare_or_set(arg, value: Value, bindings: Bindings) -> bool:
    """The core Guardat semantics for a single argument.

    ``arg`` is an evaluated argument (a Value, Unbound, or
    TuplePattern); ``value`` is what the predicate observed.

    ``arg`` was evaluated *before* the predicate ran, so a slot that
    looked unbound then may have been bound since — by an earlier
    argument of the same predicate (``objSize(O, X, X)``) or by the
    implementation itself (version resolution).  Re-look it up and
    compare against the live binding instead of double-binding into a
    structural :class:`EvalError`.
    """
    if isinstance(arg, Unbound):
        current = bindings.lookup(arg.slot)
        if isinstance(current, Unbound):
            bindings.bind(arg.slot, value)
            return True
        return current == value
    if isinstance(arg, TuplePattern):
        if not isinstance(value, TupleValue):
            return False
        return unify_tuple(arg, value, bindings)
    return arg == value


def unify_tuple(pattern, actual: TupleValue, bindings: Bindings) -> bool:
    """Unify a (possibly partial) tuple pattern with an actual tuple.

    Two-phase: every element — including elements of *nested* tuple
    patterns — is checked first, staging unbound slots through one
    shared ``pending`` list, so a failed match leaves no partial
    bindings behind and a slot repeated anywhere in the pattern is
    compared against its first occurrence instead of double-binding.
    """
    if isinstance(pattern, TupleValue):
        return pattern == actual
    if not isinstance(pattern, TuplePattern):
        raise EvalError(f"cannot unify {pattern!r} with a tuple")
    pending: list[tuple[Unbound, Value]] = []
    if not _match_elements(pattern, actual, pending):
        return False
    seen: dict[int, Value] = {}
    for unbound, actual_value in pending:
        current = bindings.lookup(unbound.slot)
        if not isinstance(current, Unbound):
            # Bound since the pattern was built (e.g. by the predicate
            # implementation between argument evaluation and unify).
            if current != actual_value:
                return False
            continue
        if unbound.slot in seen:
            if seen[unbound.slot] != actual_value:
                return False
            continue
        seen[unbound.slot] = actual_value
    for slot, actual_value in seen.items():
        bindings.bind(slot, actual_value)
    return True


def _match_elements(
    pattern: TuplePattern,
    actual: TupleValue,
    pending: list,
) -> bool:
    """Phase 1 of :func:`unify_tuple`: structural match, no binding."""
    if pattern.name != actual.name or len(pattern.elems) != len(actual.args):
        return False
    for element, actual_value in zip(pattern.elems, actual.args):
        if isinstance(element, Unbound):
            pending.append((element, actual_value))
        elif isinstance(element, TuplePattern):
            if not isinstance(actual_value, TupleValue):
                return False
            if not _match_elements(element, actual_value, pending):
                return False
        elif element != actual_value:
            return False
    return True


def render_bindings(snapshot: dict) -> str:
    """Canonical one-line rendering of a bindings snapshot.

    Deterministic (sorted names, each value via its ``render()``), so
    audit-trail records embedding it stay byte-reproducible.
    """
    return ",".join(
        f"{name}={value.render()}"
        for name, value in sorted(snapshot.items())
    )


def require_int(arg, what: str) -> int:
    """Extract a bound integer or abort the clause."""
    if isinstance(arg, IntValue):
        return arg.value
    raise EvalError(f"{what} must be a bound integer, got {arg!r}")


def as_object_id(arg) -> str | None:
    """Interpret an evaluated argument as an object id.

    Returns ``None`` for NULL (object does not exist); raises for
    anything that is not an object reference.
    """
    if isinstance(arg, NullValue):
        return None
    if isinstance(arg, StrValue):
        return arg.value
    raise EvalError(f"expected an object id, got {arg!r}")
