"""The binary-format policy interpreter.

Walks a :class:`~repro.policy.binary.CompiledPolicy` for one operation:
each clause of the disjunctive normal form gets fresh variable
bindings and its predicates run left to right; the first clause whose
predicates all hold grants the permission.  A structurally failing
clause (unbound arithmetic, type confusion) simply does not grant —
other disjuncts are still tried.

An operation with no rule in the policy is denied (deny by default).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PolicyDenied, PolicyFormatError
from repro.policy.ast import IntValue, NullValue, StrValue
from repro.policy.binary import CompiledPolicy
from repro.policy.context import EvalContext
from repro.policy.evalcore import Bindings, EvalError, TuplePattern
from repro.policy.predicates import predicate_by_opcode


@dataclass
class Decision:
    """Outcome of a permission check, with diagnostics."""

    granted: bool
    operation: str
    matched_clause: int | None = None
    bindings: dict = field(default_factory=dict)
    predicates_evaluated: int = 0

    def __bool__(self) -> bool:
        return self.granted

    @property
    def clause_path(self) -> str:
        """Canonical path of the verdict inside the policy DNF.

        The audit trail records this so an operator can answer "which
        policy clause allowed this GET?" without re-running the
        interpreter: ``read/clause[2]`` names the granting disjunct,
        ``read/denied`` means every clause refused.
        """
        if not self.granted:
            return f"{self.operation}/denied"
        if self.matched_clause is None:
            return f"{self.operation}/no-clause"
        return f"{self.operation}/clause[{self.matched_clause}]"

    def audit_detail(self) -> str:
        """Deterministic diagnostics string for the audit record."""
        from repro.policy.evalcore import render_bindings

        detail = f"predicates={self.predicates_evaluated}"
        if self.bindings:
            detail += f";bindings[{render_bindings(self.bindings)}]"
        return detail


class PolicyInterpreter:
    """Evaluates compiled policies; stateless, shareable."""

    def evaluate(
        self, policy: CompiledPolicy, operation: str, ctx: EvalContext
    ) -> Decision:
        """Check whether ``operation`` is permitted under ``policy``."""
        clauses = policy.permissions.get(operation)
        decision = Decision(granted=False, operation=operation)
        if not clauses:
            return decision
        for clause_index, clause in enumerate(clauses):
            bindings = Bindings(len(policy.variables), policy.variables)
            if self._clause_holds(policy, clause, ctx, bindings, decision):
                decision.granted = True
                decision.matched_clause = clause_index
                decision.bindings = bindings.snapshot()
                return decision
        return decision

    def check(
        self, policy: CompiledPolicy, operation: str, ctx: EvalContext
    ) -> None:
        """Like :meth:`evaluate` but raises :class:`PolicyDenied`."""
        decision = self.evaluate(policy, operation, ctx)
        if not decision.granted:
            raise PolicyDenied(
                f"policy {policy.policy_hash()[:12]} denies {operation}"
            )

    # -- internals -----------------------------------------------------------

    def _clause_holds(
        self,
        policy: CompiledPolicy,
        clause: list,
        ctx: EvalContext,
        bindings: Bindings,
        decision: Decision,
    ) -> bool:
        for instruction in clause:
            decision.predicates_evaluated += 1
            spec = predicate_by_opcode(instruction.opcode)
            try:
                args = [
                    self._eval_expr(expr, policy, ctx, bindings)
                    for expr in instruction.args
                ]
                if not spec.impl(ctx, bindings, args):
                    return False
            except EvalError:
                return False
        return True

    def _eval_expr(self, expr, policy: CompiledPolicy, ctx, bindings):
        kind = expr[0]
        if kind == "c":
            return policy.constants[expr[1]]
        if kind == "v":
            return bindings.lookup(expr[1])
        if kind == "r":
            object_id = ctx.resolve_ref(expr[1])
            return NullValue() if object_id is None else StrValue(object_id)
        if kind == "a":
            left = self._eval_expr(expr[2], policy, ctx, bindings)
            right = self._eval_expr(expr[3], policy, ctx, bindings)
            if not isinstance(left, IntValue) or not isinstance(right, IntValue):
                raise EvalError("arithmetic needs bound integers")
            if expr[1] == "+":
                return IntValue(left.value + right.value)
            if expr[1] == "-":
                return IntValue(left.value - right.value)
            raise PolicyFormatError(f"unknown arithmetic op {expr[1]!r}")
        if kind == "t":
            name = policy.constants[expr[1]]
            elems = tuple(
                self._eval_expr(arg, policy, ctx, bindings) for arg in expr[2]
            )
            return TuplePattern(name=name.value, elems=elems)
        raise PolicyFormatError(f"unknown expression kind {kind!r}")
