"""Evaluation context: what a policy check can observe.

The interpreter never touches the store directly; everything it may
inspect — session identity, object metadata and content, presented
certificates, the pending write — flows through an
:class:`EvalContext`.  The controller builds one per request; tests
build them directly.

Object *content as facts*: ``objSays`` treats an object version's bytes
as a sequence of tuples, one per line, in the policy term syntax
(``'write'('obj',3,h'ab',h'cd',k'fp')``).  The mandatory-access-logging
use case appends such lines to its log objects.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.crypto.certs import Certificate
from repro.crypto.rsa import RsaPublicKey
from repro.errors import PolicyError
from repro.policy.ast import (
    HashValue,
    IntValue,
    PubKeyValue,
    StrValue,
    TupleValue,
)
from repro.policy.lexer import TokenType, tokenize


def content_hash(data: bytes) -> str:
    """The hash used for object content everywhere in the system."""
    return hashlib.sha256(data).hexdigest()


def parse_content_tuples(data: bytes) -> list[TupleValue]:
    """Parse object content into ground tuples (see module docstring).

    Lines that do not parse as tuples are ignored — objects holding
    arbitrary payloads simply say nothing.
    """
    tuples: list[TupleValue] = []
    try:
        text = data.decode()
    except UnicodeDecodeError:
        return tuples
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        parsed = _parse_tuple_line(line)
        if parsed is not None:
            tuples.append(parsed)
    return tuples


def _parse_tuple_line(line: str) -> TupleValue | None:
    try:
        tokens = tokenize(line)
    except PolicyError:
        return None
    index = 0

    def parse_value():
        nonlocal index
        token = tokens[index]
        if token.type is TokenType.INT:
            index += 1
            return IntValue(int(token.text))
        if token.type is TokenType.HASH:
            index += 1
            return HashValue(token.text)
        if token.type is TokenType.PUBKEY:
            index += 1
            return PubKeyValue(token.text)
        if token.type in (TokenType.STRING, TokenType.IDENT):
            name = token.text
            index += 1
            if tokens[index].type is TokenType.LPAREN:
                index += 1
                args = []
                if tokens[index].type is not TokenType.RPAREN:
                    args.append(parse_value())
                    while tokens[index].type is TokenType.COMMA:
                        index += 1
                        args.append(parse_value())
                if tokens[index].type is not TokenType.RPAREN:
                    raise PolicyError("expected )")
                index += 1
                return TupleValue(name=name, args=tuple(args))
            return StrValue(name)
        raise PolicyError("not a value")

    try:
        value = parse_value()
        if tokens[index].type is not TokenType.EOF:
            return None
        return value if isinstance(value, TupleValue) else None
    except (PolicyError, IndexError):
        return None


def render_tuple(tup: TupleValue) -> str:
    """Render a tuple as a content line ``parse_content_tuples`` reads."""
    return tup.render()


@dataclass
class VersionInfo:
    """Metadata + facts for one version of one object."""

    size: int
    content_hash: str
    policy_hash: str = ""
    tuples: list = field(default_factory=list)

    @classmethod
    def from_content(
        cls, data: bytes, policy_hash: str = ""
    ) -> "VersionInfo":
        return cls(
            size=len(data),
            content_hash=content_hash(data),
            policy_hash=policy_hash,
            tuples=parse_content_tuples(data),
        )


@dataclass
class ObjectView:
    """What policies can see of one object."""

    object_id: str
    current_version: int
    versions: dict = field(default_factory=dict)  # version -> VersionInfo

    def info(self, version: int) -> VersionInfo | None:
        return self.versions.get(version)


@dataclass
class EvalContext:
    """Everything observable during one permission check."""

    #: The operation being checked: "read" | "update" | "delete".
    operation: str
    #: Authenticated client key fingerprint (from the TLS session).
    session_key: str
    #: Target object id, or None when it does not exist yet.
    this_id: str | None = None
    #: The log object id bound to ``log`` (MAL convention), if any.
    log_id: str | None = None
    #: The version argument the client supplied with a put/update.
    request_version: int | None = None
    #: Object views by id (must include this/log when referenced).
    objects: dict = field(default_factory=dict)
    #: The pending write for the target object, observable as version
    #: current+1 (or 0 on creation).
    pending: VersionInfo | None = None
    #: Certificates presented with the request (plus any chain links).
    certificates: list = field(default_factory=list)
    #: Known public keys by fingerprint — presented certificate keys
    #: plus controller-configured authorities.
    key_registry: dict = field(default_factory=dict)
    #: Trusted wall-clock of the controller (for validity windows).
    now: float = 0.0
    #: Nonce Pesos handed the client for certificate freshness.
    nonce: str = ""

    def __post_init__(self) -> None:
        for certificate in self.certificates:
            key = certificate.public_key
            self.key_registry.setdefault(key.fingerprint(), key)

    # -- object resolution -------------------------------------------------

    def resolve_ref(self, name: str) -> str | None:
        if name == "this":
            return self.this_id
        if name == "log":
            return self.log_id
        raise PolicyError(f"unknown object reference {name!r}")

    def view(self, object_id: str) -> ObjectView | None:
        return self.objects.get(object_id)

    def version_info(self, object_id: str, version: int) -> VersionInfo | None:
        """Version metadata, including the in-flight pending version."""
        view = self.view(object_id)
        if (
            self.pending is not None
            and object_id == self.this_id
            and version == (view.current_version + 1 if view else 0)
        ):
            return self.pending
        if view is None:
            return None
        return view.info(version)

    # -- certificates --------------------------------------------------------

    def authority_key(self, fingerprint: str) -> RsaPublicKey | None:
        return self.key_registry.get(fingerprint)

    def certified_tuples(
        self, authority_fp: str, freshness: float | None
    ) -> list[TupleValue]:
        """Claims from presented certs that verify under ``authority_fp``.

        A certificate counts when: the authority key is known, the
        signature verifies, the validity window contains ``now``, the
        certificate is no older than ``freshness`` seconds (when
        given), and — if the certificate carries a nonce — the nonce
        matches the one Pesos issued for this session.
        """
        authority = self.authority_key(authority_fp)
        if authority is None:
            return []
        facts: list[TupleValue] = []
        for certificate in self.certificates:
            if not isinstance(certificate, Certificate):
                continue
            if not certificate.verify_signature(authority):
                continue
            if not certificate.is_valid_at(self.now):
                continue
            if freshness is not None and (
                self.now - certificate.not_before
            ) > freshness:
                continue
            if certificate.nonce and certificate.nonce != self.nonce:
                continue
            for name, args in certificate.claims:
                facts.append(claim_to_tuple(name, args))
        return facts


def claim_to_tuple(name: str, args: tuple) -> TupleValue:
    """Convert a certificate claim into a policy tuple value.

    Claim arguments are JSON primitives; strings prefixed ``k:`` become
    public-key values and ``h:`` hash values.
    """
    converted = []
    for arg in args:
        if isinstance(arg, bool):
            converted.append(IntValue(int(arg)))
        elif isinstance(arg, (int, float)):
            converted.append(IntValue(int(arg)))
        elif isinstance(arg, str) and arg.startswith("k:"):
            converted.append(PubKeyValue(arg[2:]))
        elif isinstance(arg, str) and arg.startswith("h:"):
            converted.append(HashValue(arg[2:]))
        elif isinstance(arg, str):
            converted.append(StrValue(arg))
        elif isinstance(arg, (list, tuple)) and arg and isinstance(arg[0], str):
            converted.append(claim_to_tuple(arg[0], tuple(arg[1:])))
        else:
            raise PolicyError(f"cannot convert claim argument {arg!r}")
    return TupleValue(name=name, args=tuple(converted))
