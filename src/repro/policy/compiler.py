"""Policy compiler: AST → binary format.

Builds the constant pool (deduplicated), assigns variable slots in
first-appearance order, validates predicate names and arities against
the registry, and emits prefix-encoded argument expressions.
"""

from __future__ import annotations

from repro.errors import PolicyCompileError
from repro.policy.ast import (
    Arith,
    Literal,
    ObjectRef,
    PolicyAst,
    StrValue,
    TupleTerm,
    Variable,
)
from repro.policy.binary import CompiledPolicy, Instruction
from repro.policy.parser import parse_policy
from repro.policy.predicates import lookup_predicate


class _PoolBuilder:
    def __init__(self) -> None:
        self.constants: list = []
        self._index: dict = {}
        self.variables: list = []
        self._slots: dict = {}

    def constant(self, value) -> int:
        key = (type(value).__name__, value)
        if key not in self._index:
            self._index[key] = len(self.constants)
            self.constants.append(value)
        return self._index[key]

    def slot(self, name: str) -> int:
        if name not in self._slots:
            self._slots[name] = len(self.variables)
            self.variables.append(name)
        return self._slots[name]


def _compile_term(term, pool: _PoolBuilder) -> list:
    if isinstance(term, Literal):
        return ["c", pool.constant(term.value)]
    if isinstance(term, Variable):
        return ["v", pool.slot(term.name)]
    if isinstance(term, ObjectRef):
        return ["r", term.name]
    if isinstance(term, Arith):
        return [
            "a",
            term.op,
            _compile_term(term.left, pool),
            _compile_term(term.right, pool),
        ]
    if isinstance(term, TupleTerm):
        name_index = pool.constant(StrValue(term.name))
        return [
            "t",
            name_index,
            [_compile_term(arg, pool) for arg in term.args],
        ]
    raise PolicyCompileError(f"cannot compile term {term!r}")


def compile_ast(ast: PolicyAst, source: str = "") -> CompiledPolicy:
    """Compile a parsed policy AST into the binary format."""
    pool = _PoolBuilder()
    permissions: dict = {}
    for permission in ast.permissions:
        clauses = []
        for clause in permission.clauses:
            instructions = []
            for predicate in clause.predicates:
                spec = lookup_predicate(predicate.name)
                arity = len(predicate.args)
                if not spec.min_arity <= arity <= spec.max_arity:
                    raise PolicyCompileError(
                        f"{spec.name} takes {spec.min_arity}"
                        + (
                            f"-{spec.max_arity}"
                            if spec.max_arity != spec.min_arity
                            else ""
                        )
                        + f" arguments, got {arity}"
                    )
                instructions.append(
                    Instruction(
                        opcode=spec.opcode,
                        args=[
                            _compile_term(arg, pool) for arg in predicate.args
                        ],
                    )
                )
            clauses.append(instructions)
        permissions[permission.operation] = clauses
    return CompiledPolicy(
        constants=pool.constants,
        variables=pool.variables,
        permissions=permissions,
        source=source,
    )


def compile_source(source: str) -> CompiledPolicy:
    """Parse and compile policy source text."""
    return compile_ast(parse_policy(source), source=source)


#: Public convenience alias used throughout examples and docs.
compile_policy = compile_source
