"""Tokenizer for the policy language (the Flex stand-in).

Syntax accepted::

    read   :- sessionKeyIs(k'abc123') \\/ sessionKeyIs(K)
    update :- objId(this, O) /\\ currVersion(O, V) /\\ nextVersion(V + 1)
    # comments run to end of line

Conjunction is ``/\\`` or ``and`` (``∧`` accepted); disjunction is
``\\/`` or ``or`` (``∨`` accepted).  ``h'<hex>'`` is a hash literal,
``k'<fingerprint>'`` a public-key literal; plain quoted text is a
string.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import PolicySyntaxError


class TokenType(enum.Enum):
    IDENT = "ident"
    INT = "int"
    STRING = "string"
    HASH = "hash"
    PUBKEY = "pubkey"
    GRANT = ":-"
    AND = "and"
    OR = "or"
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    PLUS = "+"
    MINUS = "-"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    type: TokenType
    text: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.name}, {self.text!r}, {self.line}:{self.column})"


_SINGLE_CHAR = {
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    ",": TokenType.COMMA,
    "+": TokenType.PLUS,
}


def tokenize(source: str) -> list[Token]:
    """Convert policy source text into a token list ending with EOF."""
    tokens: list[Token] = []
    line = 1
    column = 1
    index = 0
    length = len(source)

    def error(message: str) -> PolicySyntaxError:
        return PolicySyntaxError(message, line=line, column=column)

    while index < length:
        char = source[index]

        if char == "\n":
            line += 1
            column = 1
            index += 1
            continue
        if char in " \t\r":
            index += 1
            column += 1
            continue
        if char == "#" or source.startswith("//", index):
            while index < length and source[index] != "\n":
                index += 1
            continue

        start_column = column

        if source.startswith(":-", index):
            tokens.append(Token(TokenType.GRANT, ":-", line, start_column))
            index += 2
            column += 2
            continue
        if source.startswith("/\\", index) or char == "∧":
            width = 1 if char == "∧" else 2
            tokens.append(Token(TokenType.AND, "/\\", line, start_column))
            index += width
            column += width
            continue
        if source.startswith("\\/", index) or char == "∨":
            width = 1 if char == "∨" else 2
            tokens.append(Token(TokenType.OR, "\\/", line, start_column))
            index += width
            column += width
            continue
        if char in _SINGLE_CHAR:
            tokens.append(Token(_SINGLE_CHAR[char], char, line, start_column))
            index += 1
            column += 1
            continue
        if char == "-":
            tokens.append(Token(TokenType.MINUS, "-", line, start_column))
            index += 1
            column += 1
            continue

        if char in "'\"":
            quote = char
            end = source.find(quote, index + 1)
            if end < 0:
                raise error("unterminated string literal")
            text = source[index + 1 : end]
            if "\n" in text:
                raise error("string literal spans lines")
            tokens.append(Token(TokenType.STRING, text, line, start_column))
            column += end + 1 - index
            index = end + 1
            continue

        if char.isdigit():
            end = index
            while end < length and source[end].isdigit():
                end += 1
            tokens.append(
                Token(TokenType.INT, source[index:end], line, start_column)
            )
            column += end - index
            index = end
            continue

        if char.isalpha() or char == "_":
            # h'...' and k'...' literals: a one-letter prefix glued to a
            # quote.
            if char in "hk" and index + 1 < length and source[index + 1] in "'\"":
                quote = source[index + 1]
                end = source.find(quote, index + 2)
                if end < 0:
                    raise error(f"unterminated {char}'...' literal")
                text = source[index + 2 : end]
                token_type = (
                    TokenType.HASH if char == "h" else TokenType.PUBKEY
                )
                tokens.append(Token(token_type, text, line, start_column))
                column += end + 1 - index
                index = end + 1
                continue
            end = index
            while end < length and (source[end].isalnum() or source[end] == "_"):
                end += 1
            word = source[index:end]
            lowered = word.lower()
            if lowered == "and":
                tokens.append(Token(TokenType.AND, word, line, start_column))
            elif lowered == "or":
                tokens.append(Token(TokenType.OR, word, line, start_column))
            else:
                tokens.append(Token(TokenType.IDENT, word, line, start_column))
            column += end - index
            index = end
            continue

        raise error(f"unexpected character {char!r}")

    tokens.append(Token(TokenType.EOF, "", line, column))
    return tokens
