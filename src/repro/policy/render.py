"""Decompiler: binary policies back to auditable source text.

The paper argues the declarative abstraction matters for *auditing*
policies (§1).  Auditors receive compiled blobs from the store (that
is what ``get_policy`` returns and what ``objPolicy`` hashes), so this
module renders a :class:`~repro.policy.binary.CompiledPolicy` back
into language source.  Round-tripping is semantics-preserving:
``compile(render(p))`` produces the same policy hash as ``p`` for any
policy compiled from source, because rendering reuses the compiler's
canonical constant/slot ordering.
"""

from __future__ import annotations

from repro.errors import PolicyFormatError
from repro.policy.binary import CompiledPolicy, Instruction
from repro.policy.predicates import predicate_by_opcode


def _render_expr(expr, policy: CompiledPolicy) -> str:
    kind = expr[0]
    if kind == "c":
        return policy.constants[expr[1]].render()
    if kind == "v":
        return policy.variables[expr[1]]
    if kind == "r":
        return expr[1]
    if kind == "a":
        left = _render_expr(expr[2], policy)
        right = _render_expr(expr[3], policy)
        return f"{left} {expr[1]} {right}"
    if kind == "t":
        name = policy.constants[expr[1]].value
        args = ", ".join(_render_expr(arg, policy) for arg in expr[2])
        return f"'{name}'({args})"
    raise PolicyFormatError(f"unknown expression kind {kind!r}")


def _render_instruction(inst: Instruction, policy: CompiledPolicy) -> str:
    spec = predicate_by_opcode(inst.opcode)
    args = ", ".join(_render_expr(arg, policy) for arg in inst.args)
    return f"{spec.name}({args})"


def render_policy(policy: CompiledPolicy) -> str:
    """Render a compiled policy as language source text."""
    lines = []
    for operation in ("read", "update", "delete"):
        clauses = policy.permissions.get(operation)
        if not clauses:
            continue
        rendered_clauses = [
            " /\\ ".join(
                _render_instruction(inst, policy) for inst in clause
            )
            for clause in clauses
        ]
        lines.append(f"{operation} :- " + " \\/ ".join(rendered_clauses))
    return "\n".join(lines)


def explain_policy(policy: CompiledPolicy) -> str:
    """A structured, human-oriented summary for audit reports."""
    lines = [
        f"policy {policy.policy_hash()[:16]}... "
        f"({policy.size_bytes()} bytes compiled)",
        f"  variables: {', '.join(policy.variables) or '(none)'}",
        f"  constants: {len(policy.constants)}",
    ]
    for operation in ("read", "update", "delete"):
        clauses = policy.permissions.get(operation)
        if not clauses:
            lines.append(f"  {operation}: never granted")
            continue
        lines.append(f"  {operation}: any of")
        for clause in clauses:
            predicates = " and ".join(
                _render_instruction(inst, policy) for inst in clause
            )
            lines.append(f"    - {predicates}")
    return "\n".join(lines)
