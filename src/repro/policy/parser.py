"""Recursive-descent parser (the Bison stand-in).

Grammar::

    policy      := permission+
    permission  := PERM ':-' condition
    PERM        := 'read' | 'update' | 'delete' | 'destroy'
    condition   := clause ('\\/' clause)*
    clause      := predicate ('/\\' predicate)*
    predicate   := IDENT '(' [term (',' term)*] ')'
    term        := sum
    sum         := atom (('+'|'-') atom)*
    atom        := INT | STRING | HASH | PUBKEY
                 | 'NULL' | 'this' | 'log'
                 | IDENT '(' args ')'        # tuple with term args
                 | STRING '(' args ')'       # quoted tuple name
                 | IDENT                     # variable

``destroy`` normalizes to ``delete``.  A permission missing from the
policy is never granted (deny by default).
"""

from __future__ import annotations

from repro.errors import PolicySyntaxError
from repro.policy.ast import (
    Arith,
    Clause,
    HashValue,
    IntValue,
    Literal,
    NullValue,
    ObjectRef,
    Permission,
    PolicyAst,
    Predicate,
    PubKeyValue,
    StrValue,
    TupleTerm,
    Variable,
)
from repro.policy.lexer import Token, TokenType, tokenize

_OPERATIONS = {"read": "read", "update": "update", "delete": "delete",
               "destroy": "delete"}
_OBJECT_REFS = {"this", "log"}


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._index = 0

    # -- token plumbing -----------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _peek(self, offset: int = 1) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._current
        if token.type is not TokenType.EOF:
            self._index += 1
        return token

    def _expect(self, token_type: TokenType) -> Token:
        token = self._current
        if token.type is not token_type:
            raise self._error(
                f"expected {token_type.value!r}, found {token.text or 'EOF'!r}"
            )
        return self._advance()

    def _error(self, message: str) -> PolicySyntaxError:
        token = self._current
        return PolicySyntaxError(message, line=token.line, column=token.column)

    # -- grammar ---------------------------------------------------------------

    def parse(self) -> PolicyAst:
        permissions = []
        seen: set[str] = set()
        while self._current.type is not TokenType.EOF:
            permission = self._permission()
            if permission.operation in seen:
                raise self._error(
                    f"duplicate permission {permission.operation!r}"
                )
            seen.add(permission.operation)
            permissions.append(permission)
        if not permissions:
            raise self._error("policy has no permissions")
        return PolicyAst(permissions=tuple(permissions))

    def _permission(self) -> Permission:
        token = self._expect(TokenType.IDENT)
        operation = _OPERATIONS.get(token.text.lower())
        if operation is None:
            raise PolicySyntaxError(
                f"unknown permission {token.text!r} "
                "(expected read/update/delete)",
                line=token.line,
                column=token.column,
            )
        self._expect(TokenType.GRANT)
        clauses = [self._clause()]
        while self._current.type is TokenType.OR:
            self._advance()
            clauses.append(self._clause())
        return Permission(operation=operation, clauses=tuple(clauses))

    def _clause(self) -> Clause:
        predicates = [self._predicate()]
        while self._current.type is TokenType.AND:
            self._advance()
            predicates.append(self._predicate())
        return Clause(predicates=tuple(predicates))

    def _predicate(self) -> Predicate:
        token = self._expect(TokenType.IDENT)
        self._expect(TokenType.LPAREN)
        args = self._args()
        self._expect(TokenType.RPAREN)
        return Predicate(name=token.text, args=tuple(args))

    def _args(self) -> list:
        if self._current.type is TokenType.RPAREN:
            return []
        args = [self._term()]
        while self._current.type is TokenType.COMMA:
            self._advance()
            args.append(self._term())
        return args

    def _term(self):
        left = self._atom()
        while self._current.type in (TokenType.PLUS, TokenType.MINUS):
            op_token = self._advance()
            right = self._atom()
            left = Arith(op=op_token.text, left=left, right=right)
        return left

    def _atom(self):
        token = self._current
        if token.type is TokenType.INT:
            self._advance()
            return Literal(IntValue(int(token.text)))
        if token.type is TokenType.HASH:
            self._advance()
            return Literal(HashValue(token.text))
        if token.type is TokenType.PUBKEY:
            self._advance()
            return Literal(PubKeyValue(token.text))
        if token.type is TokenType.STRING:
            self._advance()
            if self._current.type is TokenType.LPAREN:
                return self._tuple_term(token.text)
            return Literal(StrValue(token.text))
        if token.type is TokenType.IDENT:
            self._advance()
            lowered = token.text.lower()
            if lowered == "null":
                return Literal(NullValue())
            if self._current.type is TokenType.LPAREN:
                return self._tuple_term(token.text)
            if lowered in _OBJECT_REFS:
                return ObjectRef(lowered)
            return Variable(token.text)
        raise self._error(f"expected a term, found {token.text or 'EOF'!r}")

    def _tuple_term(self, name: str) -> TupleTerm:
        self._expect(TokenType.LPAREN)
        args = self._args()
        self._expect(TokenType.RPAREN)
        return TupleTerm(name=name, args=tuple(args))


def parse_policy(source: str) -> PolicyAst:
    """Parse policy source text into an AST."""
    return _Parser(tokenize(source)).parse()
