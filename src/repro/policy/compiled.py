"""The policy fast path: compiled closures, decision cache, batching.

Three layers, each preserving the interpreter's observable behaviour
bit for bit (``Decision.clause_path``, ``predicates_evaluated``, the
bindings snapshot — and therefore the audit chain):

``compiled_form``
    Partially evaluates a :class:`~repro.policy.binary.CompiledPolicy`
    into per-clause lists of specialized Python closures.  Constant
    subexpressions fold at compile time; a conjunct whose arguments are
    all constants and whose predicate is context-free collapses to a
    known boolean; runs of constant-true conjuncts become a single
    predicate-count bump; a constant-false conjunct (with only constant
    conjuncts before it) turns the whole clause into an exact
    count-and-fail, stripping the dead tail.  Dead-disjunct facts are
    cross-checked against what :mod:`repro.analysis.policy_verify`
    proves statically.  Anything the compiler cannot model exactly
    (malformed slots, unknown constructs) falls back to delegating the
    whole policy to the interpreter — the fallback *is* the oracle, so
    behaviour cannot drift.

``DecisionCache``
    Memoizes decisions keyed by ``(policy_hash, operation, request
    shape, epoch)``.  The epoch advances on every mutation the
    controller applies, ``put_policy`` additionally invalidates by
    policy hash, and entries carry a ``valid_until`` derived from the
    certificate validity windows and the policy's freshness constants,
    so time-based release never serves a stale verdict.  Only
    decisions for policies that never read object state are cached
    (their outcome is a pure function of the request shape); object
    predicates always re-evaluate so their cache/store access pattern
    — which the effects ledger records — is unchanged.

``FastPolicy.evaluate_batch``
    Evaluates many contexts against one compiled policy clause-major:
    each clause's closures sweep all still-undecided contexts before
    the next clause runs, which keeps the compiled ops hot.  Per
    context the work, the order of predicate side effects, and the
    resulting :class:`Decision` are identical to sequential calls.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.crypto.certs import Certificate
from repro.errors import PesosError, PolicyFormatError
from repro.policy.ast import IntValue, NullValue, PubKeyValue, StrValue
from repro.policy.binary import CompiledPolicy
from repro.policy.context import EvalContext
from repro.policy.evalcore import Bindings, EvalError, TuplePattern
from repro.policy.interpreter import Decision, PolicyInterpreter
from repro.policy.predicates import predicate_by_opcode

#: Opcodes whose implementations consult object state (``ctx.view`` /
#: ``ctx.version_info``): currVersion, objSize, objPolicy, objHash,
#: objSays, currIndex.  ``objId`` (20) and ``nextVersion``/``nextIndex``
#: only look at the evaluated arguments and the request.
_OBJECT_OPCODES = frozenset({21, 23, 24, 25, 26, 27})

#: Predicates that are pure functions of their (ground) arguments, so a
#: conjunct applying one to constants collapses at compile time.
_CONTEXT_FREE = frozenset({"eq", "le", "lt", "ge", "gt"})

_CERTIFICATE_SAYS = 10
_SESSION_KEY_IS = 11


class _CompileFallback(Exception):
    """Internal: this policy cannot be compiled exactly; delegate."""


# ---------------------------------------------------------------------------
# Expression compilation
# ---------------------------------------------------------------------------

def _compile_expr(expr, policy: CompiledPolicy):
    """Compile an argument expression tree.

    Returns ``("const", value)`` when the expression is a compile-time
    constant, else ``("dyn", fn)`` with ``fn(ctx, bindings) -> value``
    reproducing the interpreter's evaluation (including which
    exceptions it raises, and when).
    """
    if not isinstance(expr, (list, tuple)) or not expr:
        raise _CompileFallback(f"malformed expression {expr!r}")
    kind = expr[0]
    if kind == "c":
        try:
            return ("const", policy.constants[expr[1]])
        except (IndexError, TypeError) as exc:
            raise _CompileFallback(str(exc)) from exc
    if kind == "v":
        slot = expr[1]
        if not isinstance(slot, int) or not 0 <= slot < len(policy.variables):
            raise _CompileFallback(f"variable slot {slot!r} out of range")
        return ("dyn", lambda ctx, bindings, _slot=slot: bindings.lookup(_slot))
    if kind == "r":
        name = expr[1]

        def deref(ctx, bindings, _name=name):
            object_id = ctx.resolve_ref(_name)
            return NullValue() if object_id is None else StrValue(object_id)

        return ("dyn", deref)
    if kind == "a":
        return _compile_arith(expr, policy)
    if kind == "t":
        return _compile_tuple(expr, policy)

    # The interpreter raises PolicyFormatError when it *evaluates* an
    # unknown kind — i.e. only if the clause gets that far.
    def unknown(ctx, bindings, _kind=kind):
        raise PolicyFormatError(f"unknown expression kind {_kind!r}")

    return ("dyn", unknown)


def _compile_arith(expr, policy: CompiledPolicy):
    op = expr[1]
    left = _compile_expr(expr[2], policy)
    right = _compile_expr(expr[3], policy)
    if left[0] == "const" and right[0] == "const" and op in ("+", "-"):
        lv, rv = left[1], right[1]
        if isinstance(lv, IntValue) and isinstance(rv, IntValue):
            folded = lv.value + rv.value if op == "+" else lv.value - rv.value
            return ("const", IntValue(folded))

        # Constants of the wrong type: every evaluation raises the same
        # structural error, failing (only) the enclosing clause.
        def bad_types(ctx, bindings):
            raise EvalError("arithmetic needs bound integers")

        return ("dyn", bad_types)

    lf = _as_fn(left)
    rf = _as_fn(right)

    def arith(ctx, bindings, _op=op, _lf=lf, _rf=rf):
        lv = _lf(ctx, bindings)
        rv = _rf(ctx, bindings)
        if not isinstance(lv, IntValue) or not isinstance(rv, IntValue):
            raise EvalError("arithmetic needs bound integers")
        if _op == "+":
            return IntValue(lv.value + rv.value)
        if _op == "-":
            return IntValue(lv.value - rv.value)
        raise PolicyFormatError(f"unknown arithmetic op {_op!r}")

    return ("dyn", arith)


def _compile_tuple(expr, policy: CompiledPolicy):
    try:
        name = policy.constants[expr[1]].value
        elem_exprs = list(expr[2])
    except (IndexError, TypeError, AttributeError) as exc:
        raise _CompileFallback(str(exc)) from exc
    elems = [_compile_expr(arg, policy) for arg in elem_exprs]
    if all(kind == "const" for kind, _ in elems):
        return (
            "const",
            TuplePattern(name=name, elems=tuple(v for _, v in elems)),
        )
    fns = [_as_fn(compiled) for compiled in elems]

    def build(ctx, bindings, _name=name, _fns=fns):
        return TuplePattern(
            name=_name, elems=tuple(fn(ctx, bindings) for fn in _fns)
        )

    return ("dyn", build)


def _as_fn(compiled):
    kind, payload = compiled
    if kind == "const":
        return lambda ctx, bindings, _value=payload: _value
    return payload


# ---------------------------------------------------------------------------
# Instruction (conjunct) compilation
# ---------------------------------------------------------------------------

def _compile_instruction(inst, policy: CompiledPolicy, meta: dict):
    """Compile one conjunct into ``("const", bool)`` or ``("dyn", fn)``.

    ``fn(ctx, bindings) -> bool`` runs the predicate exactly as the
    interpreter would, *excluding* the ``predicates_evaluated``
    increment, which the clause runner accounts.
    """
    spec_obj = None
    try:
        spec_obj = predicate_by_opcode(inst.opcode)
    except PesosError:
        # Unknown opcode: the interpreter raises PolicyCompileError at
        # evaluation time, after counting the conjunct.
        def missing(ctx, bindings, _opcode=inst.opcode):
            predicate_by_opcode(_opcode)
            raise AssertionError("unreachable")

        return ("dyn", missing)
    spec = spec_obj

    if inst.opcode in _OBJECT_OPCODES:
        meta["uses_objects"] = True
    compiled_args = [_compile_expr(arg, policy) for arg in inst.args]
    all_const = all(kind == "const" for kind, _ in compiled_args)
    const_args = [payload for _, payload in compiled_args]

    if inst.opcode == _CERTIFICATE_SAYS:
        meta["uses_certificates"] = True
        if len(compiled_args) == 3:
            freshness_kind, freshness_value = compiled_args[1]
            if freshness_kind == "const" and isinstance(
                freshness_value, IntValue
            ):
                meta["freshness_windows"].add(freshness_value.value)
            else:
                meta["dynamic_freshness"] = True

    if all_const and spec.name in _CONTEXT_FREE:
        # Pure predicate over constants: run it once now.  A structural
        # EvalError is equivalent to holding False — either way the
        # clause fails right here with the same predicate count.
        try:
            held = spec.impl(None, Bindings(len(policy.variables)), const_args)
        except EvalError:
            return ("const", False)
        except Exception as exc:  # e.g. bad arity -> ValueError at eval
            raise _CompileFallback(str(exc)) from exc
        meta["folded"] += 1
        return ("const", bool(held))

    if inst.opcode == _SESSION_KEY_IS and all_const and len(const_args) == 1:
        const = const_args[0]
        if isinstance(const, PubKeyValue):
            # compare_or_set against a ground key is string equality on
            # the fingerprint — the hottest conjunct in ACL policies.
            meta["folded"] += 1
            return (
                "dyn",
                lambda ctx, bindings, _fp=const.value: (
                    ctx.session_key == _fp
                ),
            )
        # A non-key constant never equals PubKeyValue(session_key).
        meta["folded"] += 1
        return ("const", False)

    impl = spec.impl
    template = [
        payload if kind == "const" else None
        for kind, payload in compiled_args
    ]
    dynamic = [
        (index, payload)
        for index, (kind, payload) in enumerate(compiled_args)
        if kind == "dyn"
    ]
    if not dynamic:
        def const_call(ctx, bindings, _impl=impl, _template=template):
            return _impl(ctx, bindings, list(_template))

        return ("dyn", const_call)

    def step(ctx, bindings, _impl=impl, _template=template, _dynamic=dynamic):
        args = list(_template)
        for index, fn in _dynamic:
            args[index] = fn(ctx, bindings)
        return _impl(ctx, bindings, args)

    return ("dyn", step)


# ---------------------------------------------------------------------------
# Clause compilation
# ---------------------------------------------------------------------------

@dataclass
class CompiledClause:
    """One disjunct as a flat op list the clause runner executes.

    Ops are ``("bump", n)`` (n constant-true conjuncts), ``("fail", n)``
    (count n conjuncts, then fail the clause — a stripped dead tail),
    and ``("call", fn)`` (one live predicate).
    """

    ops: list
    #: Earlier clause whose outcome this one replays (exact duplicate).
    duplicate_of: int | None = None
    #: Conjuncts stripped after a constant-false position.
    stripped_conjuncts: int = 0


def _compile_clause(clause, policy, meta, facts):
    ops: list = []
    bump = 0
    stripped = 0
    steps = [
        _compile_instruction(inst, policy, meta) for inst in clause
    ]
    for position, (kind, payload) in enumerate(steps):
        if kind == "const":
            if payload:
                bump += 1
                continue
            ops.append(("fail", bump + 1))
            stripped = len(steps) - position - 1
            meta["stripped_clauses"] += 1
            if facts is not None and position in facts.get(
                "const_false_at", ()
            ):
                meta["verified_strips"] += 1
            break
        if bump:
            ops.append(("bump", bump))
            bump = 0
        ops.append(("call", payload))
    else:
        if bump:
            ops.append(("bump", bump))
    return CompiledClause(ops=ops, stripped_conjuncts=stripped)


def _run_clause(ops, ctx, bindings, decision) -> bool:
    for kind, payload in ops:
        if kind == "call":
            decision.predicates_evaluated += 1
            try:
                if not payload(ctx, bindings):
                    return False
            except EvalError:
                return False
        elif kind == "bump":
            decision.predicates_evaluated += payload
        else:  # "fail"
            decision.predicates_evaluated += payload
            return False
    return True


# ---------------------------------------------------------------------------
# FastPolicy
# ---------------------------------------------------------------------------

@dataclass
class FastPolicy:
    """A policy compiled to closures, with the interpreter as fallback."""

    policy: CompiledPolicy
    clauses: dict = field(default_factory=dict)
    num_slots: int = 0
    variables: list = field(default_factory=list)
    #: Interpreter used verbatim when exact compilation was impossible.
    delegate: PolicyInterpreter | None = None
    #: True when any conjunct reads object state; such decisions are
    #: never cached (their store/cache footprint must stay observable).
    uses_objects: bool = False
    uses_certificates: bool = False
    #: certificateSays freshness windows that are non-constant, making
    #: time-based invalidation unpredictable: do not cache.
    dynamic_freshness: bool = False
    #: Constant freshness windows (seconds), for ``valid_until``.
    freshness_windows: frozenset = frozenset()
    folded_conjuncts: int = 0
    stripped_clauses: int = 0
    verified_strips: int = 0
    memoized_duplicates: int = 0

    # -- evaluation ----------------------------------------------------------

    def evaluate(self, operation: str, ctx: EvalContext) -> Decision:
        if self.delegate is not None:
            return self.delegate.evaluate(self.policy, operation, ctx)
        clauses = self.clauses.get(operation)
        decision = Decision(granted=False, operation=operation)
        if not clauses:
            return decision
        outcomes: list = [None] * len(clauses)
        for index, compiled in enumerate(clauses):
            duplicate = compiled.duplicate_of
            if duplicate is not None and outcomes[duplicate] is not None:
                # First-match order means the original already ran (and
                # failed, else we would have returned); evaluation is
                # deterministic in ctx, so replay its predicate count.
                delta = outcomes[duplicate]
                decision.predicates_evaluated += delta
                outcomes[index] = delta
                continue
            bindings = Bindings(self.num_slots, self.variables)
            before = decision.predicates_evaluated
            if _run_clause(compiled.ops, ctx, bindings, decision):
                decision.granted = True
                decision.matched_clause = index
                decision.bindings = bindings.snapshot()
                return decision
            outcomes[index] = decision.predicates_evaluated - before
        return decision

    def evaluate_batch(self, operation: str, contexts: list) -> list:
        """Clause-major evaluation of many contexts in one pass.

        Returns one entry per context: its :class:`Decision`, or
        ``None`` when evaluating that context raised (malformed policy
        constructs surface per-request on the normal path instead).
        """
        if self.delegate is not None:
            return [
                self._delegate_one(operation, ctx) for ctx in contexts
            ]
        decisions = [
            Decision(granted=False, operation=operation) for _ in contexts
        ]
        clauses = self.clauses.get(operation)
        if not clauses:
            return decisions
        outcomes = [[None] * len(clauses) for _ in contexts]
        pending = list(range(len(contexts)))
        for index, compiled in enumerate(clauses):
            still_pending = []
            duplicate = compiled.duplicate_of
            for position in pending:
                decision = decisions[position]
                if (
                    duplicate is not None
                    and outcomes[position][duplicate] is not None
                ):
                    delta = outcomes[position][duplicate]
                    decision.predicates_evaluated += delta
                    outcomes[position][index] = delta
                    still_pending.append(position)
                    continue
                bindings = Bindings(self.num_slots, self.variables)
                before = decision.predicates_evaluated
                try:
                    held = _run_clause(
                        compiled.ops, contexts[position], bindings, decision
                    )
                except PesosError:
                    decisions[position] = None
                    continue
                if held:
                    decision.granted = True
                    decision.matched_clause = index
                    decision.bindings = bindings.snapshot()
                    continue
                outcomes[position][index] = (
                    decision.predicates_evaluated - before
                )
                still_pending.append(position)
            pending = still_pending
            if not pending:
                break
        return decisions

    def _delegate_one(self, operation, ctx):
        try:
            return self.delegate.evaluate(self.policy, operation, ctx)
        except PesosError:
            return None

    # -- cacheability --------------------------------------------------------

    @property
    def cacheable(self) -> bool:
        return (
            self.delegate is None
            and not self.uses_objects
            and not self.dynamic_freshness
        )

    def valid_until(self, ctx: EvalContext) -> float | None:
        """First future instant at which this decision could change.

        Time enters evaluation only through certificate checks: the
        validity window bounds and the freshness cutoffs
        ``not_before + window``.  The nearest such boundary strictly
        after ``ctx.now`` caps the cache entry; ``None`` means the
        decision is time-invariant (within its epoch).
        """
        if not self.uses_certificates or not ctx.certificates:
            return None
        boundaries = []
        for certificate in ctx.certificates:
            if not isinstance(certificate, Certificate):
                continue
            boundaries.append(certificate.not_before)
            boundaries.append(certificate.not_after)
            for window in self.freshness_windows:
                boundaries.append(certificate.not_before + window)
        future = [b for b in boundaries if b > ctx.now]
        return min(future) if future else None

    def request_shape(self, ctx: EvalContext):
        """Everything cached decisions may depend on, hashable.

        ``None`` marks the request uncacheable.  Certificates are
        folded in by fingerprint + signature (order preserved — fact
        iteration order can steer which tuple binds a variable), and
        the session nonce only matters when certificates do.
        """
        if not self.cacheable:
            return None
        pending = ctx.pending
        cert_part: tuple = ()
        nonce = ""
        if self.uses_certificates:
            parts = []
            for certificate in ctx.certificates:
                if not isinstance(certificate, Certificate):
                    return None
                parts.append(
                    (certificate.fingerprint(), certificate.signature)
                )
            cert_part = tuple(parts)
            nonce = ctx.nonce
        return (
            ctx.session_key,
            ctx.this_id,
            ctx.log_id,
            ctx.request_version,
            None
            if pending is None
            else (pending.size, pending.content_hash, pending.policy_hash),
            cert_part,
            nonce,
        )


def compile_closures(policy: CompiledPolicy) -> FastPolicy:
    """Compile ``policy`` to closures (no memoization; see
    :func:`compiled_form`)."""
    meta = {
        "uses_objects": False,
        "uses_certificates": False,
        "dynamic_freshness": False,
        "freshness_windows": set(),
        "folded": 0,
        "stripped_clauses": 0,
        "verified_strips": 0,
        "memoized_duplicates": 0,
    }
    try:
        facts = _verifier_facts(policy)
        compiled: dict = {}
        for operation, clauses in policy.permissions.items():
            compiled_clauses = []
            for index, clause in enumerate(clauses):
                clause_facts = facts.get((operation, index))
                compiled_clause = _compile_clause(
                    clause, policy, meta, clause_facts
                )
                duplicate = None
                if clause_facts is not None:
                    duplicate = clause_facts.get("duplicate_of")
                if duplicate is not None and _same_sequence(
                    clauses[duplicate], clause
                ):
                    # The verifier's signature is a *set*; replaying an
                    # outcome needs the instruction *sequence* equal.
                    compiled_clause.duplicate_of = duplicate
                    meta["memoized_duplicates"] += 1
                compiled_clauses.append(compiled_clause)
            compiled[operation] = compiled_clauses
    except _CompileFallback:
        return FastPolicy(policy=policy, delegate=PolicyInterpreter())
    return FastPolicy(
        policy=policy,
        clauses=compiled,
        num_slots=len(policy.variables),
        variables=list(policy.variables),
        uses_objects=meta["uses_objects"],
        uses_certificates=meta["uses_certificates"],
        dynamic_freshness=meta["dynamic_freshness"],
        freshness_windows=frozenset(meta["freshness_windows"]),
        folded_conjuncts=meta["folded"],
        stripped_clauses=meta["stripped_clauses"],
        verified_strips=meta["verified_strips"],
        memoized_duplicates=meta["memoized_duplicates"],
    )


def _same_sequence(clause_a, clause_b) -> bool:
    if len(clause_a) != len(clause_b):
        return False
    return all(
        a.opcode == b.opcode and a.args == b.args
        for a, b in zip(clause_a, clause_b)
    )


def _verifier_facts(policy: CompiledPolicy) -> dict:
    # Imported lazily: analysis depends on the policy package, not the
    # other way around, except through this one bridge.
    from repro.analysis.policy_verify import clause_facts

    try:
        return clause_facts(policy)
    except PesosError:
        return {}


def compiled_form(policy: CompiledPolicy) -> FastPolicy:
    """Memoized compilation, living on the policy instance.

    Tying the compiled form to the ``CompiledPolicy`` object means the
    LFU policy cache governs its lifetime: evicting the policy drops
    the closures with it, and a re-fetched policy recompiles once.
    """
    fast = policy._fast_cache
    if fast is None:
        fast = compile_closures(policy)
        policy._fast_cache = fast
    return fast


# ---------------------------------------------------------------------------
# Decision cache
# ---------------------------------------------------------------------------

@dataclass
class DecisionCacheStats:
    hits: int = 0
    misses: int = 0
    expired: int = 0
    invalidations: int = 0
    epoch_advances: int = 0


@dataclass
class _CacheEntry:
    decision: Decision
    valid_until: float | None


class DecisionCache:
    """Bounded LRU of policy decisions.

    Keys are ``(policy_hash, operation, shape, epoch)``.  The epoch is
    part of the key *and* entries are dropped eagerly when it advances,
    so a stale verdict is unreachable by construction even if a caller
    mishandles invalidation.  ``put`` refuses writes stamped with an
    old epoch (a check that ran before a concurrent mutation advanced
    the world must not re-poison the cache).
    """

    def __init__(self, max_entries: int = 4096):
        self.max_entries = max(1, int(max_entries))
        self._entries: OrderedDict = OrderedDict()
        self.epoch = 0
        self.stats = DecisionCacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def advance_epoch(self) -> None:
        self.epoch += 1
        self.stats.epoch_advances += 1
        self._entries.clear()

    def invalidate_policy(self, policy_hash: str) -> int:
        doomed = [
            key for key in self._entries if key[0] == policy_hash
        ]
        for key in doomed:
            del self._entries[key]
        self.stats.invalidations += len(doomed)
        return len(doomed)

    def contains(
        self, policy_hash: str, operation: str, shape, *, now: float
    ) -> bool:
        """Membership probe that leaves the stats and LRU order alone
        (prewarm uses it; probes are not request traffic)."""
        entry = self._entries.get(
            (policy_hash, operation, shape, self.epoch)
        )
        if entry is None:
            return False
        return entry.valid_until is None or now < entry.valid_until

    def get(
        self, policy_hash: str, operation: str, shape, *, now: float
    ) -> Decision | None:
        key = (policy_hash, operation, shape, self.epoch)
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        if entry.valid_until is not None and now >= entry.valid_until:
            # A time boundary passed: the decision may have flipped.
            del self._entries[key]
            self.stats.expired += 1
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return _copy_decision(entry.decision)

    def put(
        self,
        policy_hash: str,
        operation: str,
        shape,
        *,
        epoch: int,
        decision: Decision,
        valid_until: float | None = None,
    ) -> None:
        if epoch != self.epoch:
            return
        key = (policy_hash, operation, shape, epoch)
        self._entries[key] = _CacheEntry(
            decision=_copy_decision(decision), valid_until=valid_until
        )
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)


def _copy_decision(decision: Decision) -> Decision:
    return Decision(
        granted=decision.granted,
        operation=decision.operation,
        matched_clause=decision.matched_clause,
        bindings=dict(decision.bindings),
        predicates_evaluated=decision.predicates_evaluated,
    )


# ---------------------------------------------------------------------------
# PolicyEngine: what the controller talks to
# ---------------------------------------------------------------------------

class PolicyEngine:
    """Compiled closures fronted by the decision cache."""

    def __init__(
        self,
        interpreter: PolicyInterpreter | None = None,
        cache_entries: int = 4096,
    ):
        self.interpreter = interpreter or PolicyInterpreter()
        self.decisions = DecisionCache(max_entries=cache_entries)

    def evaluate(
        self, policy: CompiledPolicy, operation: str, ctx: EvalContext
    ) -> Decision:
        fast = compiled_form(policy)
        shape = fast.request_shape(ctx)
        if shape is None:
            return fast.evaluate(operation, ctx)
        policy_hash = policy.policy_hash()
        cached = self.decisions.get(
            policy_hash, operation, shape, now=ctx.now
        )
        if cached is not None:
            return cached
        decision = fast.evaluate(operation, ctx)
        self.decisions.put(
            policy_hash,
            operation,
            shape,
            epoch=self.decisions.epoch,
            decision=decision,
            valid_until=fast.valid_until(ctx),
        )
        return decision

    def prewarm(
        self, policy: CompiledPolicy, operation: str, contexts: list
    ) -> int:
        """Batch-evaluate ``contexts`` and seed the cache; returns the
        number of decisions cached.  Duplicate shapes collapse to one
        evaluation, and already-cached shapes are skipped."""
        fast = compiled_form(policy)
        if not fast.cacheable:
            return 0
        policy_hash = policy.policy_hash()
        epoch = self.decisions.epoch
        fresh: list = []
        shapes: list = []
        seen: set = set()
        for ctx in contexts:
            shape = fast.request_shape(ctx)
            if shape is None or shape in seen:
                continue
            seen.add(shape)
            if self.decisions.contains(
                policy_hash, operation, shape, now=ctx.now
            ):
                continue
            fresh.append(ctx)
            shapes.append(shape)
        if not fresh:
            return 0
        warmed = 0
        for ctx, shape, decision in zip(
            fresh, shapes, fast.evaluate_batch(operation, fresh)
        ):
            if decision is None:
                continue
            self.decisions.put(
                policy_hash,
                operation,
                shape,
                epoch=epoch,
                decision=decision,
                valid_until=fast.valid_until(ctx),
            )
            warmed += 1
        return warmed

    def advance_epoch(self) -> None:
        self.decisions.advance_epoch()

    def invalidate_policy(self, policy_hash: str) -> int:
        return self.decisions.invalidate_policy(policy_hash)
