"""AST nodes and runtime values of the policy language.

The language has five value types (§3.3): integers, strings, hashes,
public keys, and tuples ``key(v1, ...)``.  Terms appearing in predicate
arguments are literals of those types, variables, the special object
references ``this`` and ``log``, or integer arithmetic (needed for the
versioned-store policy's ``nextVersion(cV + 1)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


# ---------------------------------------------------------------------------
# Runtime values
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class IntValue:
    value: int

    def render(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class StrValue:
    value: str

    def render(self) -> str:
        return f"'{self.value}'"


@dataclass(frozen=True)
class HashValue:
    """A content hash (hex string)."""

    value: str

    def render(self) -> str:
        return f"h'{self.value}'"


@dataclass(frozen=True)
class PubKeyValue:
    """A public-key fingerprint, as produced by client certificates."""

    value: str

    def render(self) -> str:
        return f"k'{self.value}'"


@dataclass(frozen=True)
class NullValue:
    """The NULL object id (used for not-yet-created objects)."""

    def render(self) -> str:
        return "NULL"


@dataclass(frozen=True)
class TupleValue:
    """A named tuple ``key(v1, ..., vn)``."""

    name: str
    args: tuple

    def render(self) -> str:
        inner = ",".join(arg.render() for arg in self.args)
        return f"'{self.name}'({inner})"


Value = Union[IntValue, StrValue, HashValue, PubKeyValue, NullValue, TupleValue]


def value_sort_key(value: Value) -> tuple:
    """Stable ordering for constant pools."""
    return (type(value).__name__, value.render())


# ---------------------------------------------------------------------------
# Terms (argument expressions)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Literal:
    """A constant value term."""

    value: Value


@dataclass(frozen=True)
class Variable:
    """A policy variable: bound on first use, compared afterwards."""

    name: str


@dataclass(frozen=True)
class ObjectRef:
    """``this`` or ``log`` — resolved from the evaluation context."""

    name: str  # "this" | "log"


@dataclass(frozen=True)
class Arith:
    """Integer arithmetic ``left op right`` with op in {+, -}."""

    op: str
    left: "Term"
    right: "Term"


@dataclass(frozen=True)
class TupleTerm:
    """A tuple whose arguments are themselves terms (may hold variables)."""

    name: str
    args: tuple


Term = Union[Literal, Variable, ObjectRef, Arith, TupleTerm]


# ---------------------------------------------------------------------------
# Policy structure
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Predicate:
    """One predicate application, e.g. ``currVersion(o, cV)``."""

    name: str
    args: tuple  # of Term


@dataclass(frozen=True)
class Clause:
    """A conjunction of predicates."""

    predicates: tuple  # of Predicate


@dataclass(frozen=True)
class Permission:
    """One ``perm :- clause \\/ clause ...`` rule."""

    operation: str  # "read" | "update" | "delete"
    clauses: tuple  # of Clause; empty means never granted


@dataclass(frozen=True)
class PolicyAst:
    """A full parsed policy: up to one rule per operation."""

    permissions: tuple  # of Permission

    def permission(self, operation: str) -> Permission | None:
        for perm in self.permissions:
            if perm.operation == operation:
                return perm
        return None
