"""Predicate registry and implementations (Table 1).

Every predicate receives the evaluation context, the clause's variable
bindings, and its already-evaluated arguments (values, unbound slots,
or tuple patterns), and returns whether it holds — binding variables
per the compare-or-set semantics as a side effect.

``currIndex``/``nextIndex`` are the index-flavoured aliases the MAL
use case (§5.4) uses for ``currVersion``/``nextVersion``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import PolicyCompileError
from repro.policy.ast import (
    HashValue,
    IntValue,
    NullValue,
    PubKeyValue,
    StrValue,
    TupleValue,
)
from repro.policy.context import EvalContext
from repro.policy.evalcore import (
    Bindings,
    EvalError,
    TuplePattern,
    Unbound,
    as_object_id,
    compare_or_set,
    require_int,
    unify_tuple,
)


@dataclass(frozen=True)
class PredicateSpec:
    """Registry entry: opcode, arity bounds, and the implementation."""

    name: str
    opcode: int
    min_arity: int
    max_arity: int
    impl: Callable


_REGISTRY_BY_NAME: dict[str, PredicateSpec] = {}
_REGISTRY_BY_OPCODE: dict[int, PredicateSpec] = {}


def _register(name: str, opcode: int, min_arity: int, max_arity: int):
    def decorator(impl: Callable) -> Callable:
        spec = PredicateSpec(
            name=name,
            opcode=opcode,
            min_arity=min_arity,
            max_arity=max_arity,
            impl=impl,
        )
        key = name.lower()
        if key in _REGISTRY_BY_NAME or opcode in _REGISTRY_BY_OPCODE:
            raise PolicyCompileError(f"duplicate predicate {name}/{opcode}")
        _REGISTRY_BY_NAME[key] = spec
        _REGISTRY_BY_OPCODE[opcode] = spec
        return impl

    return decorator


def lookup_predicate(name: str) -> PredicateSpec:
    spec = _REGISTRY_BY_NAME.get(name.lower())
    if spec is None:
        raise PolicyCompileError(f"unknown predicate {name!r}")
    return spec


def predicate_by_opcode(opcode: int) -> PredicateSpec:
    spec = _REGISTRY_BY_OPCODE.get(opcode)
    if spec is None:
        raise PolicyCompileError(f"unknown predicate opcode {opcode}")
    return spec


def all_predicates() -> list[PredicateSpec]:
    return sorted(_REGISTRY_BY_NAME.values(), key=lambda spec: spec.opcode)


# ---------------------------------------------------------------------------
# Relational predicates
# ---------------------------------------------------------------------------

@_register("eq", 1, 2, 2)
def _eq(ctx: EvalContext, bindings: Bindings, args) -> bool:
    a, b = args
    if isinstance(a, Unbound) and isinstance(b, Unbound):
        raise EvalError("eq() with two unbound variables")
    if isinstance(a, (Unbound, TuplePattern)):
        a, b = b, a  # normalize: ground value first
    if isinstance(a, (Unbound, TuplePattern)):
        raise EvalError("eq() needs one ground argument")
    return compare_or_set(b, a, bindings)


def _relational(op: Callable[[int, int], bool]):
    def impl(ctx: EvalContext, bindings: Bindings, args) -> bool:
        left = require_int(args[0], "comparison operand")
        right = require_int(args[1], "comparison operand")
        return op(left, right)

    return impl


_register("le", 2, 2, 2)(_relational(lambda a, b: a <= b))
_register("lt", 3, 2, 2)(_relational(lambda a, b: a < b))
_register("ge", 4, 2, 2)(_relational(lambda a, b: a >= b))
_register("gt", 5, 2, 2)(_relational(lambda a, b: a > b))


# ---------------------------------------------------------------------------
# Session and certificate predicates
# ---------------------------------------------------------------------------

@_register("sessionKeyIs", 11, 1, 1)
def _session_key_is(ctx: EvalContext, bindings: Bindings, args) -> bool:
    return compare_or_set(args[0], PubKeyValue(ctx.session_key), bindings)


@_register("certificateSays", 10, 2, 3)
def _certificate_says(ctx: EvalContext, bindings: Bindings, args) -> bool:
    authority = args[0]
    if not isinstance(authority, PubKeyValue):
        raise EvalError("certificateSays authority must be a bound public key")
    if len(args) == 3:
        freshness: float | None = float(require_int(args[1], "freshness"))
        pattern = args[2]
    else:
        freshness = None
        pattern = args[1]
    if not isinstance(pattern, (TuplePattern, TupleValue)):
        raise EvalError("certificateSays needs a tuple argument")
    for fact in ctx.certified_tuples(authority.value, freshness):
        if isinstance(pattern, TupleValue):
            if pattern == fact:
                return True
        elif unify_tuple(pattern, fact, bindings):
            return True
    return False


# ---------------------------------------------------------------------------
# Object predicates
# ---------------------------------------------------------------------------

@_register("objId", 20, 2, 2)
def _obj_id(ctx: EvalContext, bindings: Bindings, args) -> bool:
    obj, ident = args
    if isinstance(obj, Unbound):
        raise EvalError("objId object argument must be resolvable")
    object_id = as_object_id(obj)
    if object_id is None:
        # The object does not exist: only objId(x, NULL) holds.
        return isinstance(ident, NullValue)
    if isinstance(ident, NullValue):
        return False
    return compare_or_set(ident, StrValue(object_id), bindings)


def _resolve_object(ctx: EvalContext, arg):
    object_id = as_object_id(arg)
    if object_id is None:
        return None, None
    return object_id, ctx.view(object_id)


def _resolve_version(ctx, bindings, object_id, view, version_arg):
    if isinstance(version_arg, Unbound):
        if view is None:
            return None
        bindings.bind(version_arg.slot, IntValue(view.current_version))
        return view.current_version
    return require_int(version_arg, "version")


@_register("currVersion", 21, 2, 2)
def _curr_version(ctx: EvalContext, bindings: Bindings, args) -> bool:
    _object_id, view = _resolve_object(ctx, args[0])
    if view is None:
        return False
    return compare_or_set(args[1], IntValue(view.current_version), bindings)


@_register("currIndex", 27, 2, 2)
def _curr_index(ctx: EvalContext, bindings: Bindings, args) -> bool:
    return _curr_version(ctx, bindings, args)


@_register("nextVersion", 22, 1, 1)
def _next_version(ctx: EvalContext, bindings: Bindings, args) -> bool:
    if ctx.request_version is None:
        return False
    return compare_or_set(args[0], IntValue(ctx.request_version), bindings)


@_register("nextIndex", 28, 1, 2)
def _next_index(ctx: EvalContext, bindings: Bindings, args) -> bool:
    # Two-argument form names the object first (MAL example); the
    # request's version argument is object-independent either way.
    version_arg = args[-1]
    if len(args) == 2:
        object_id = as_object_id(args[0])
        if object_id is None:
            return False
    return _next_version(ctx, bindings, (version_arg,))


def _version_metadata(extract: Callable):
    def impl(ctx: EvalContext, bindings: Bindings, args) -> bool:
        object_id, view = _resolve_object(ctx, args[0])
        if object_id is None:
            return False
        version = _resolve_version(ctx, bindings, object_id, view, args[1])
        if version is None:
            return False
        info = ctx.version_info(object_id, version)
        if info is None:
            return False
        return compare_or_set(args[2], extract(info), bindings)

    return impl


_register("objSize", 23, 3, 3)(
    _version_metadata(lambda info: IntValue(info.size))
)
_register("objPolicy", 24, 3, 3)(
    _version_metadata(lambda info: HashValue(info.policy_hash))
)
_register("objHash", 25, 3, 3)(
    _version_metadata(lambda info: HashValue(info.content_hash))
)


@_register("objSays", 26, 3, 3)
def _obj_says(ctx: EvalContext, bindings: Bindings, args) -> bool:
    object_id, view = _resolve_object(ctx, args[0])
    if object_id is None:
        return False
    version = _resolve_version(ctx, bindings, object_id, view, args[1])
    if version is None:
        return False
    info = ctx.version_info(object_id, version)
    if info is None:
        return False
    pattern = args[2]
    if not isinstance(pattern, (TuplePattern, TupleValue)):
        raise EvalError("objSays needs a tuple argument")
    for fact in info.tuples:
        if isinstance(pattern, TupleValue):
            if pattern == fact:
                return True
        elif unify_tuple(pattern, fact, bindings):
            return True
    return False
