"""Differential harness: interpreter vs compiled closures.

Replays every policy in ``examples/policies`` — plus seeded random
evaluation contexts exercising grants, denials, structural failures,
certificates, and object facts — through both
:class:`~repro.policy.interpreter.PolicyInterpreter` and the compiled
fast path, asserting the resulting :class:`Decision`\\ s are identical
field by field (``clause_path``, ``predicates_evaluated``, bindings).

Everything is deterministic in the seed: the certificate keypairs are
fixed primes baked in below (``secrets``-based key generation would
make signatures, and therefore decision traces, unreproducible), so
the SHA-256 of the decision trace is stable across runs and machines —
CI compares the interpreter's and the compiled path's trace hashes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from pathlib import Path
from random import Random

from repro.crypto.certs import Certificate
from repro.crypto.rsa import RsaPrivateKey
from repro.policy.binary import CompiledPolicy
from repro.policy.compiler import compile_source
from repro.policy.compiled import CompiledClause, FastPolicy, compile_closures
from repro.policy.context import EvalContext, ObjectView, VersionInfo
from repro.policy.interpreter import Decision, PolicyInterpreter

CORPUS_DIR = Path(__file__).resolve().parents[3] / "examples" / "policies"

#: Fingerprints the corpus policies name (`k'caca…'` etc.).
CA_FINGERPRINT = "ca" * 32
ADMIN_FINGERPRINT = "ad" * 32

# Fixed RSA keypairs (p, q) for the corpus authorities.  Baked in so
# signatures — and with them the decision-trace SHA — are bit-stable.
_CA_PRIMES = (
    0xF28F1C32EE5FB8B086F00B1EF3D81357A843648072D4D574F85D3EBE4399395D,
    0xD6BEC178F28F5BB7F216033A6F95978437230793EEC97D36039F42384CDA0751,
)
_TS_PRIMES = (
    0xF808791603EB56523C9FA95D71354B0767F1DEAAA62459BED0378FE678EDC64D,
    0xE78C337D54F44197D56F683AE27818D902AC842D11BB63B2230FC7C74998DBDF,
)


def _keypair(primes: tuple) -> RsaPrivateKey:
    p, q = primes
    return RsaPrivateKey(
        n=p * q, e=65537, d=pow(65537, -1, (p - 1) * (q - 1)), p=p, q=q
    )


CA_KEY = _keypair(_CA_PRIMES)
TS_KEY = _keypair(_TS_PRIMES)

#: The release instant the time-capsule corpus policies gate on.
RELEASE_TIME = 1767225600


def load_corpus() -> list:
    """``(name, CompiledPolicy)`` for every corpus policy."""
    entries = []
    for path in sorted(CORPUS_DIR.glob("*.policy")):
        entries.append((path.stem, compile_source(path.read_text())))
    return entries


# ---------------------------------------------------------------------------
# Seeded context generation
# ---------------------------------------------------------------------------

def _policy_key_fingerprints(policy: CompiledPolicy) -> list:
    from repro.policy.ast import PubKeyValue

    return sorted(
        {
            value.value
            for value in policy.constants
            if isinstance(value, PubKeyValue)
        }
    )


def _uses_opcode(policy: CompiledPolicy, opcode: int) -> bool:
    return any(
        inst.opcode == opcode
        for clauses in policy.permissions.values()
        for clause in clauses
        for inst in clause
    )


def _time_certificates(rng: Random, nonce: str) -> list:
    """A `ts`-delegation chain like the time-capsule scenario uses.

    Randomly degenerate: expired windows, stale freshness, wrong
    nonces, and pre-release timestamps all appear so denial paths get
    differential coverage too.
    """
    ts_fp = TS_KEY.public_key.fingerprint()
    said_time = rng.choice(
        [RELEASE_TIME - 1, RELEASE_TIME, RELEASE_TIME + rng.randrange(1, 9999)]
    )
    not_before = float(rng.choice([0, 500, 2000]))
    not_after = not_before + float(rng.choice([100, 400, 100000]))
    cert_nonce = rng.choice(["", nonce, "stale-nonce"])
    delegation = Certificate(
        subject="timestamper",
        public_key=TS_KEY.public_key,
        issuer="corpus-ca",
        serial=1,
        not_before=not_before,
        not_after=not_after,
        claims=(("ts", ("k:" + ts_fp,)),),
    )
    delegation = replace(
        delegation, signature=CA_KEY.sign(delegation.tbs_bytes())
    )
    stamp = Certificate(
        subject="timestamp",
        public_key=TS_KEY.public_key,
        issuer="timestamper",
        serial=2,
        not_before=not_before,
        not_after=not_after,
        claims=(("time", (said_time,)),),
        nonce=cert_nonce,
    )
    stamp = replace(stamp, signature=TS_KEY.sign(stamp.tbs_bytes()))
    return [delegation, stamp]


def _log_view(
    rng: Random,
    log_id: str,
    this_id: str | None,
    session_key: str,
    this_view: ObjectView | None,
    pending: VersionInfo | None,
) -> ObjectView:
    """A MAL-style log whose lines sometimes authorize the request."""
    lines = []
    curr = this_view.current_version if this_view is not None else 0
    if this_id is not None and rng.random() < 0.6:
        lines.append(f"'read'('{this_id}',{curr},k'{session_key}')")
    if (
        this_id is not None
        and this_view is not None
        and pending is not None
        and rng.random() < 0.6
    ):
        old = this_view.info(curr)
        if old is not None:
            lines.append(
                f"'write'('{this_id}',{curr},h'{old.content_hash}',"
                f"h'{pending.content_hash}',k'{session_key}')"
            )
    if rng.random() < 0.4:
        lines.append(f"'read'('{this_id}',{curr + 7},k'{'e1' * 16}')")
    if rng.random() < 0.3:
        lines.append("not a tuple line")
    content = "\n".join(lines).encode()
    return ObjectView(
        object_id=log_id,
        current_version=1,
        versions={1: VersionInfo.from_content(content)},
    )


def random_context(
    policy: CompiledPolicy, operation: str, rng: Random
) -> EvalContext:
    """One seeded evaluation context biased toward interesting paths."""
    key_pool = _policy_key_fingerprints(policy) + ["e1" * 16]
    session_key = rng.choice(key_pool)
    nonce = rng.choice(["", f"n-{rng.randrange(4)}"])
    now = float(rng.choice([100, 700, 1700, 90000]))

    this_id = rng.choice(["obj-a", "obj-b", None])
    log_id = rng.choice(["log-a", None])
    objects: dict = {}
    pending = None
    request_version = None

    this_view = None
    if this_id is not None and rng.random() < 0.8:
        curr = rng.randrange(0, 4)
        versions = {
            v: VersionInfo.from_content(
                f"payload-{this_id}-{v}".encode(),
                policy_hash=policy.policy_hash(),
            )
            for v in range(max(0, curr - 1), curr + 1)
        }
        this_view = ObjectView(
            object_id=this_id, current_version=curr, versions=versions
        )
        objects[this_id] = this_view

    if operation == "update":
        next_version = (
            this_view.current_version + 1 if this_view is not None else 0
        )
        request_version = rng.choice(
            [next_version, next_version, next_version + 1, 0, None]
        )
        if rng.random() < 0.85:
            pending = VersionInfo.from_content(
                f"pending-{rng.randrange(1000)}".encode(),
                policy_hash=policy.policy_hash(),
            )

    if log_id is not None:
        objects[log_id] = _log_view(
            rng, log_id, this_id, session_key, this_view, pending
        )

    certificates: list = []
    key_registry: dict = {}
    if _uses_opcode(policy, 10) and rng.random() < 0.8:
        certificates = _time_certificates(rng, nonce)
        if rng.random() < 0.9:
            key_registry[CA_FINGERPRINT] = CA_KEY.public_key

    return EvalContext(
        operation=operation,
        session_key=session_key,
        this_id=this_id,
        log_id=log_id,
        request_version=request_version,
        objects=objects,
        pending=pending,
        certificates=certificates,
        key_registry=key_registry,
        now=now,
        nonce=nonce,
    )


def corpus_contexts(
    policy: CompiledPolicy, seed: int, per_operation: int = 40
) -> list:
    """``(operation, EvalContext)`` pairs for one policy, seeded."""
    rng = Random(seed)
    cases = []
    operations = policy.operations() or ["read"]
    for operation in operations:
        for _ in range(per_operation):
            cases.append((operation, random_context(policy, operation, rng)))
    return cases


# ---------------------------------------------------------------------------
# Decision comparison and tracing
# ---------------------------------------------------------------------------

def assert_identical(
    interpreted: Decision, compiled: Decision, label: str = ""
) -> None:
    """Field-by-field equality — the audit-compatibility contract."""
    for attribute in (
        "granted",
        "operation",
        "matched_clause",
        "predicates_evaluated",
        "bindings",
    ):
        left = getattr(interpreted, attribute)
        right = getattr(compiled, attribute)
        if left != right:
            raise AssertionError(
                f"decision divergence {label}: {attribute} "
                f"interpreter={left!r} compiled={right!r}"
            )
    if interpreted.clause_path != compiled.clause_path:
        raise AssertionError(
            f"decision divergence {label}: clause_path "
            f"{interpreted.clause_path} != {compiled.clause_path}"
        )


def trace_line(name: str, index: int, decision: Decision) -> str:
    return f"{name}#{index}|{decision.clause_path}|{decision.audit_detail()}"


def trace_sha(lines: list) -> str:
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


def counting_fast_policy(policy: CompiledPolicy) -> tuple:
    """A fresh compiled form whose predicate closures count invocations.

    Returns ``(fast, cell)`` where ``cell[0]`` is the number of live
    closure calls executed — the compiled path's work units, against
    the interpreter's ``predicates_evaluated``.
    """
    fast = compile_closures(policy)
    cell = [0]

    def wrap(fn):
        def counted(ctx, bindings):
            cell[0] += 1
            return fn(ctx, bindings)

        return counted

    if fast.delegate is None:
        fast.clauses = {
            operation: [
                CompiledClause(
                    ops=[
                        ("call", wrap(payload))
                        if kind == "call"
                        else (kind, payload)
                        for kind, payload in compiled.ops
                    ],
                    duplicate_of=compiled.duplicate_of,
                    stripped_conjuncts=compiled.stripped_conjuncts,
                )
                for compiled in clauses
            ]
            for operation, clauses in fast.clauses.items()
        }
    return fast, cell


@dataclass
class DiffReport:
    """Outcome of one differential sweep."""

    cases: int = 0
    grants: int = 0
    denials: int = 0
    interpreter_predicates: int = 0
    compiled_calls: int = 0
    trace_sha_interpreter: str = ""
    trace_sha_compiled: str = ""

    @property
    def work_ratio(self) -> float:
        """Interpreter predicate evaluations per compiled closure call."""
        if self.compiled_calls == 0:
            return float(self.interpreter_predicates or 1)
        return self.interpreter_predicates / self.compiled_calls


def run_differential(
    seed: int = 0, per_operation: int = 40, policies: list | None = None
) -> DiffReport:
    """The full sweep; raises ``AssertionError`` on any divergence."""
    interpreter = PolicyInterpreter()
    report = DiffReport()
    interp_lines: list = []
    compiled_lines: list = []
    for name, policy in policies or load_corpus():
        fast, cell = counting_fast_policy(policy)
        for index, (operation, ctx) in enumerate(
            corpus_contexts(policy, seed=seed, per_operation=per_operation)
        ):
            interpreted = interpreter.evaluate(policy, operation, ctx)
            compiled = fast.evaluate(operation, ctx)
            assert_identical(
                interpreted, compiled, label=f"{name}#{index} {operation}"
            )
            report.cases += 1
            report.grants += 1 if interpreted.granted else 0
            report.denials += 0 if interpreted.granted else 1
            report.interpreter_predicates += interpreted.predicates_evaluated
            interp_lines.append(trace_line(name, index, interpreted))
            compiled_lines.append(trace_line(name, index, compiled))
        report.compiled_calls += cell[0]

        # Batched evaluation must agree case-for-case as well.
        cases = corpus_contexts(policy, seed=seed, per_operation=10)
        by_operation: dict = {}
        for operation, ctx in cases:
            by_operation.setdefault(operation, []).append(ctx)
        plain = compile_closures(policy)
        for operation, contexts in by_operation.items():
            batch = plain.evaluate_batch(operation, contexts)
            for position, ctx in enumerate(contexts):
                assert_identical(
                    interpreter.evaluate(policy, operation, ctx),
                    batch[position],
                    label=f"{name} batch {operation}[{position}]",
                )
    report.trace_sha_interpreter = trace_sha(interp_lines)
    report.trace_sha_compiled = trace_sha(compiled_lines)
    return report
