"""The Pesos policy engine (§3.3).

A policy grants the three permissions ``read``, ``update`` and
``delete`` (``destroy`` is accepted as an alias for ``delete``), each
guarded by a condition in disjunctive normal form over the predicates
of Table 1.  The pipeline mirrors the paper's:

1. :mod:`repro.policy.lexer` + :mod:`repro.policy.parser` — the
   human-readable source (Flex/Bison stand-ins) into an AST.
2. :mod:`repro.policy.compiler` — AST into the compact *binary format*
   (:mod:`repro.policy.binary`): a constant pool plus per-permission
   predicate programs, identified by their content hash.
3. :mod:`repro.policy.interpreter` — evaluates a compiled policy
   against an :class:`~repro.policy.context.EvalContext` using
   Guardat's "compare or set" variable semantics.

Example::

    from repro.policy import compile_policy

    policy = compile_policy('''
        read   :- sessionKeyIs(k'<alice>') \\/ sessionKeyIs(k'<bob>')
        update :- sessionKeyIs(k'<alice>')
        delete :- sessionKeyIs(k'<admin>')
    ''')
"""

from repro.policy.ast import (
    HashValue,
    IntValue,
    PubKeyValue,
    StrValue,
    TupleValue,
    Value,
)
from repro.policy.binary import CompiledPolicy
from repro.policy.compiled import (
    DecisionCache,
    FastPolicy,
    PolicyEngine,
    compiled_form,
)
from repro.policy.compiler import compile_policy, compile_source
from repro.policy.context import EvalContext, ObjectView
from repro.policy.interpreter import PolicyInterpreter
from repro.policy.parser import parse_policy
from repro.policy.render import explain_policy, render_policy

__all__ = [
    "CompiledPolicy",
    "DecisionCache",
    "EvalContext",
    "FastPolicy",
    "PolicyEngine",
    "compiled_form",
    "HashValue",
    "IntValue",
    "ObjectView",
    "PolicyInterpreter",
    "PubKeyValue",
    "StrValue",
    "TupleValue",
    "Value",
    "compile_policy",
    "compile_source",
    "explain_policy",
    "parse_policy",
    "render_policy",
]
