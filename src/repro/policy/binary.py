"""The compact binary policy format.

The policy compiler turns an AST into this representation once, at
submission time; every subsequent permission check interprets the
binary form directly (the paper's "binary-format interpreter", §1).

Layout (serialized with the same TLV field encoding as the Kinetic
protocol)::

    version        u8
    constants      list of tagged values (the constant pool)
    variables      list of slot names (index = slot number)
    permissions    op -> list of clauses; a clause is a list of
                   (opcode, arg-expressions) instructions

Argument expressions are prefix-encoded trees::

    ['c', pool_index]                  constant
    ['v', slot]                        variable slot
    ['r', 'this' | 'log']              object reference
    ['a', '+'|'-', left, right]        integer arithmetic
    ['t', pool_index(name), [args]]    tuple pattern

A policy's identity is the SHA-256 of its serialized bytes, so equal
policies share cache entries and the hash doubles as the integrity
check ``objPolicy`` inspects.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.errors import PesosError, PolicyFormatError
from repro.kinetic.protocol import decode_fields, encode_fields
from repro.policy.ast import (
    HashValue,
    IntValue,
    NullValue,
    PubKeyValue,
    StrValue,
    TupleValue,
    Value,
)

FORMAT_VERSION = 1

_VALUE_TAGS = {
    IntValue: "i",
    StrValue: "s",
    HashValue: "h",
    PubKeyValue: "k",
    NullValue: "n",
    TupleValue: "t",
}


def _encode_value(value: Value) -> list:
    tag = _VALUE_TAGS[type(value)]
    if isinstance(value, IntValue):
        return [tag, value.value]
    if isinstance(value, NullValue):
        return [tag]
    if isinstance(value, TupleValue):
        return [tag, value.name, [_encode_value(arg) for arg in value.args]]
    return [tag, value.value]


def _decode_value(item: list) -> Value:
    tag = item[0]
    if tag == "i":
        return IntValue(int(item[1]))
    if tag == "s":
        return StrValue(item[1])
    if tag == "h":
        return HashValue(item[1])
    if tag == "k":
        return PubKeyValue(item[1])
    if tag == "n":
        return NullValue()
    if tag == "t":
        return TupleValue(
            name=item[1], args=tuple(_decode_value(arg) for arg in item[2])
        )
    raise PolicyFormatError(f"unknown value tag {tag!r}")


@dataclass
class Instruction:
    """One predicate invocation in compiled form."""

    opcode: int
    args: list  # prefix-encoded argument expression trees


@dataclass
class CompiledPolicy:
    """A policy in binary form, ready for interpretation."""

    constants: list = field(default_factory=list)
    variables: list = field(default_factory=list)
    #: operation -> list of clauses -> list of Instruction
    permissions: dict = field(default_factory=dict)
    source: str = ""

    _blob_cache: bytes | None = field(default=None, repr=False, compare=False)
    _hash_cache: str | None = field(default=None, repr=False, compare=False)
    #: Memoized closure compilation (:mod:`repro.policy.compiled`).
    #: Living on the instance ties its lifetime to the policy-cache
    #: entry: LFU eviction drops the compiled form with the policy.
    _fast_cache: object | None = field(default=None, repr=False, compare=False)

    def to_bytes(self) -> bytes:
        """Serialize; cached because the policy id hashes this blob."""
        if self._blob_cache is None:
            self._blob_cache = encode_fields(
                {
                    "version": FORMAT_VERSION,
                    "constants": [
                        _encode_value(value) for value in self.constants
                    ],
                    "variables": list(self.variables),
                    "permissions": [
                        [
                            op,
                            [
                                [[inst.opcode, inst.args] for inst in clause]
                                for clause in clauses
                            ],
                        ]
                        for op, clauses in sorted(self.permissions.items())
                    ],
                }
            )
        return self._blob_cache

    @classmethod
    def from_bytes(cls, blob: bytes) -> "CompiledPolicy":
        try:
            fields = decode_fields(blob)
        except PesosError as exc:
            # The wire decoder's whole error surface (KineticError /
            # VarintError) shares this root; see the decoder fuzz test.
            raise PolicyFormatError(f"corrupt policy blob: {exc}") from exc
        if fields.get("version") != FORMAT_VERSION:
            raise PolicyFormatError(
                f"unsupported policy format version {fields.get('version')!r}"
            )
        permissions = {}
        for op, clauses in fields["permissions"]:
            permissions[op] = [
                [Instruction(opcode=inst[0], args=inst[1]) for inst in clause]
                for clause in clauses
            ]
        policy = cls(
            constants=[_decode_value(item) for item in fields["constants"]],
            variables=list(fields["variables"]),
            permissions=permissions,
        )
        policy._blob_cache = blob
        return policy

    def policy_hash(self) -> str:
        """Content-addressed identity of this policy.

        Memoized: the hash is consulted on every audited decision (and
        by the decision cache), so recomputing SHA-256 over the blob
        per check would put hashing back on the hot path.
        """
        if self._hash_cache is None:
            self._hash_cache = hashlib.sha256(self.to_bytes()).hexdigest()
        return self._hash_cache

    def size_bytes(self) -> int:
        return len(self.to_bytes())

    def operations(self) -> list:
        return sorted(self.permissions)
