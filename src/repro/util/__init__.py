"""Shared low-level utilities: varints, byte helpers, caches."""

from repro.util.bytesutil import fmt_size, parse_size, xor_bytes
from repro.util.lfu import LFUCache
from repro.util.varint import (
    decode_varint,
    encode_varint,
    read_varint,
    write_varint,
)

__all__ = [
    "LFUCache",
    "decode_varint",
    "encode_varint",
    "fmt_size",
    "parse_size",
    "read_varint",
    "write_varint",
    "xor_bytes",
]
