"""Approximate least-frequently-used cache.

Pesos (§4.2) bounds each in-enclave cache (policies, objects, indices,
session keys) and evicts with an *approximated* LFU policy.  We implement
the classic O(1) LFU of Shah et al.: frequency buckets in a doubly-linked
order, with FIFO tie-breaking inside a bucket, plus periodic frequency
aging so one-time-hot entries do not pin the cache forever (this is the
"approximate" part).

The cache is capacity-bounded either by entry count or by a byte budget
(``weigher`` returns an entry's size), matching the paper's per-region
memory budgets (e.g. 5 MB for policies).
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable, Iterator
from dataclasses import dataclass, field
from typing import Any, Generic, Hashable, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


@dataclass
class CacheStats:
    """Counters exposed for benchmarks and tests."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    inserts: int = 0
    #: Inserts refused because one entry outweighed the whole byte
    #: budget.  Counted separately from evictions: nothing was cached,
    #: so hit-rate dashboards must not read the refusal as churn.
    rejected_oversize: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class _Bucket(Generic[K]):
    """All keys currently at one access frequency, in insertion order."""

    freq: int
    keys: OrderedDict = field(default_factory=OrderedDict)
    prev: "_Bucket | None" = None
    next: "_Bucket | None" = None


class LFUCache(Generic[K, V]):
    """O(1) LFU cache with optional byte budget and frequency aging.

    Parameters
    ----------
    max_entries:
        Maximum number of entries; ``None`` for unbounded count.
    max_bytes:
        Maximum total weight; requires ``weigher``. ``None`` disables.
    weigher:
        Function mapping a value to its weight in bytes.
    age_interval:
        After this many accesses, all frequencies are halved. ``0``
        disables aging (exact LFU).
    """

    def __init__(
        self,
        max_entries: int | None = None,
        max_bytes: int | None = None,
        weigher: Callable[[V], int] | None = None,
        age_interval: int = 0,
    ):
        if max_entries is None and max_bytes is None:
            raise ValueError("cache needs max_entries or max_bytes")
        if max_bytes is not None and weigher is None:
            raise ValueError("max_bytes requires a weigher")
        if max_entries is not None and max_entries <= 0:
            raise ValueError("max_entries must be positive")
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._weigher = weigher
        self._age_interval = age_interval
        self._accesses_since_age = 0
        self._values: dict[K, V] = {}
        self._weights: dict[K, int] = {}
        self._key_bucket: dict[K, _Bucket] = {}
        self._head: _Bucket | None = None  # lowest frequency bucket
        self._total_weight = 0
        self.stats = CacheStats()

    # -- public API ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, key: K) -> bool:
        return key in self._values

    def __iter__(self) -> Iterator[K]:
        return iter(list(self._values))

    @property
    def total_weight(self) -> int:
        """Current sum of entry weights (0 when no weigher configured)."""
        return self._total_weight

    def get(self, key: K, default: Any = None) -> V | Any:
        """Look up ``key``, bumping its frequency on a hit."""
        if key not in self._values:
            self.stats.misses += 1
            return default
        self.stats.hits += 1
        self._touch(key)
        return self._values[key]

    def peek(self, key: K, default: Any = None) -> V | Any:
        """Look up ``key`` without affecting frequency or stats."""
        return self._values.get(key, default)

    def put(self, key: K, value: V) -> None:
        """Insert or replace ``key``; evicts as needed to respect budgets."""
        weight = self._weigher(value) if self._weigher else 0
        if self.max_bytes is not None and weight > self.max_bytes:
            # An entry larger than the whole budget is never cacheable.
            # Dropping a stale pre-existing entry is an eviction, and
            # the refused insert is counted on its own so the stats
            # still add up (inserts + rejected = put attempts).
            if self.remove(key) is not None:
                self.stats.evictions += 1
            self.stats.rejected_oversize += 1
            return
        if key in self._values:
            self._total_weight += weight - self._weights[key]
            self._values[key] = value
            self._weights[key] = weight
            self._touch(key)
        else:
            self._insert_new(key, value, weight)
            self.stats.inserts += 1
        self._evict_to_budget(exempt=key)

    def remove(self, key: K) -> V | None:
        """Delete ``key`` if present, returning its value."""
        if key not in self._values:
            return None
        value = self._values.pop(key)
        self._total_weight -= self._weights.pop(key)
        bucket = self._key_bucket.pop(key)
        del bucket.keys[key]
        if not bucket.keys:
            self._unlink(bucket)
        return value

    def clear(self) -> None:
        """Drop every entry (stats are preserved)."""
        self._values.clear()
        self._weights.clear()
        self._key_bucket.clear()
        self._head = None
        self._total_weight = 0
        # A reset starts a fresh aging epoch; leftover access counts
        # would make the first aging pass fire early on the new
        # population.
        self._accesses_since_age = 0

    def frequency(self, key: K) -> int:
        """Current access frequency of ``key`` (0 if absent)."""
        bucket = self._key_bucket.get(key)
        return bucket.freq if bucket else 0

    # -- internals ----------------------------------------------------

    def _insert_new(self, key: K, value: V, weight: int) -> None:
        self._values[key] = value
        self._weights[key] = weight
        self._total_weight += weight
        if self._head is None or self._head.freq != 1:
            bucket = _Bucket(freq=1)
            bucket.next = self._head
            if self._head:
                self._head.prev = bucket
            self._head = bucket
        self._head.keys[key] = None
        self._key_bucket[key] = self._head

    def _touch(self, key: K) -> None:
        bucket = self._key_bucket[key]
        target_freq = bucket.freq + 1
        nxt = bucket.next
        if nxt is None or nxt.freq != target_freq:
            new_bucket = _Bucket(freq=target_freq, prev=bucket, next=nxt)
            bucket.next = new_bucket
            if nxt:
                nxt.prev = new_bucket
            nxt = new_bucket
        del bucket.keys[key]
        nxt.keys[key] = None
        self._key_bucket[key] = nxt
        if not bucket.keys:
            self._unlink(bucket)
        self._maybe_age()

    def _maybe_age(self) -> None:
        if not self._age_interval:
            return
        self._accesses_since_age += 1
        if self._accesses_since_age < self._age_interval:
            return
        self._accesses_since_age = 0
        # Halve every frequency by rebuilding the bucket chain.  Rare
        # (once per age_interval accesses), so the O(n) cost amortizes.
        by_freq: dict[int, list[K]] = {}
        bucket = self._head
        while bucket:
            aged = max(1, bucket.freq // 2)
            by_freq.setdefault(aged, []).extend(bucket.keys)
            bucket = bucket.next
        self._head = None
        self._key_bucket.clear()
        prev: _Bucket | None = None
        for freq in sorted(by_freq):
            nb = _Bucket(freq=freq)
            for key in by_freq[freq]:
                nb.keys[key] = None
                self._key_bucket[key] = nb
            nb.prev = prev
            if prev:
                prev.next = nb
            else:
                self._head = nb
            prev = nb

    def _unlink(self, bucket: _Bucket) -> None:
        if bucket.prev:
            bucket.prev.next = bucket.next
        else:
            self._head = bucket.next
        if bucket.next:
            bucket.next.prev = bucket.prev

    def _over_budget(self) -> bool:
        if self.max_entries is not None and len(self._values) > self.max_entries:
            return True
        if self.max_bytes is not None and self._total_weight > self.max_bytes:
            return True
        return False

    def _evict_to_budget(self, exempt: K) -> None:
        while self._over_budget():
            victim = self._pick_victim(exempt)
            if victim is None:
                return
            self.remove(victim)
            self.stats.evictions += 1

    def _pick_victim(self, exempt: K) -> K | None:
        bucket = self._head
        while bucket:
            for key in bucket.keys:  # FIFO within the bucket
                if key != exempt or len(self._values) == 1:
                    return key
            bucket = bucket.next
        return None
