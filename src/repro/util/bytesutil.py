"""Byte-string helpers used across subsystems."""

from __future__ import annotations

_UNITS = {"B": 1, "KB": 1 << 10, "MB": 1 << 20, "GB": 1 << 30, "TB": 1 << 40}


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings."""
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")
    return bytes(x ^ y for x, y in zip(a, b))


def parse_size(text: str) -> int:
    """Parse a human size like ``"96MB"`` or ``"1 KB"`` into bytes."""
    cleaned = text.strip().upper().replace(" ", "")
    for unit in sorted(_UNITS, key=len, reverse=True):
        if cleaned.endswith(unit):
            number = cleaned[: -len(unit)]
            return int(float(number) * _UNITS[unit])
    return int(cleaned)


def fmt_size(nbytes: int) -> str:
    """Render a byte count as a short human string (``1.5MB``)."""
    value = float(nbytes)
    for unit in ("B", "KB", "MB", "GB"):
        if value < 1024 or unit == "GB":
            if unit == "B":
                return f"{int(value)}B"
            return f"{value:.1f}{unit}".replace(".0", "")
        value /= 1024
    raise AssertionError("unreachable")
