"""LEB128-style unsigned varints.

Both the Kinetic wire protocol (a protobuf stand-in) and the compiled
policy binary format use varints for compact length/field encoding.
"""

from __future__ import annotations

import io

from repro.errors import PesosError


class VarintError(PesosError):
    """Varint is malformed (truncated or longer than 64 bits)."""


_MAX_VARINT_BYTES = 10  # 64 bits / 7 bits-per-byte, rounded up


def encode_varint(value: int) -> bytes:
    """Encode a non-negative integer as a LEB128 varint."""
    if value < 0:
        raise VarintError(f"varints are unsigned, got {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a varint from ``data`` starting at ``offset``.

    Returns ``(value, next_offset)``.
    """
    result = 0
    shift = 0
    pos = offset
    for _ in range(_MAX_VARINT_BYTES):
        if pos >= len(data):
            raise VarintError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
    raise VarintError("varint exceeds 64 bits")


def write_varint(stream: io.BytesIO, value: int) -> None:
    """Append a varint to a binary stream."""
    stream.write(encode_varint(value))


def read_varint(stream: io.BytesIO) -> int:
    """Read one varint from a binary stream."""
    result = 0
    shift = 0
    for _ in range(_MAX_VARINT_BYTES):
        chunk = stream.read(1)
        if not chunk:
            raise VarintError("truncated varint")
        byte = chunk[0]
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result
        shift += 7
    raise VarintError("varint exceeds 64 bits")
